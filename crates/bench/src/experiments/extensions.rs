//! Extension experiments beyond the paper's figures — its §8 future-work
//! items, answerable here because the simulator has ground truth:
//!
//! * `loss` — diurnal packet loss alongside diurnal RTT (§8: "packet
//!   loss"),
//! * `shared` — how much router-level infrastructure IPv4 and IPv6 share,
//!   and how sharing relates to the RTT difference (§8: "to what extent
//!   infrastructure is shared between IPv4 and IPv6"),
//! * `coloc` — the §2.2 colocated-cluster campaign: full mesh between
//!   clusters in the same facility.

use crate::scenario::Scenario;
use s2s_stats::quantiles;
use s2s_core::congestion::{detect, DetectParams};
use s2s_core::lossrate::{has_diurnal_loss, loss_stats};
use s2s_probe::{colocated_pairs, Campaign, CampaignConfig};
use s2s_stats::pearson;
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

/// Loss-analysis headline numbers.
#[derive(Clone, Copy, Debug)]
pub struct LossResult {
    /// Mean loss fraction across pairs.
    pub mean_loss: f64,
    /// Fraction of pairs with diurnal loss.
    pub diurnal_loss_fraction: f64,
    /// Among RTT-congested pairs, the fraction that also shows diurnal
    /// loss (congested queues drop packets).
    pub congested_with_loss: f64,
}

/// §8 extension: packet loss and its relation to diurnal congestion.
pub fn loss(scenario: &Scenario, start: SimTime) -> LossResult {
    let all = scenario.sample_pair_list(scenario.scale.ping_pairs.min(1500), 0x1055);
    let pairs: Vec<(ClusterId, ClusterId)> = all.chunks(2).map(|c| c[0]).collect();
    let cfg = CampaignConfig::ping_week(start);
    let (timelines, _) = Campaign::new(cfg)
        .run_ping(&scenario.net, &pairs)
        .expect("in-memory campaign cannot fail");
    let mut losses = Vec::new();
    let mut diurnal_loss = 0usize;
    let mut congested = 0usize;
    let mut congested_and_loss = 0usize;
    for tl in timelines.iter().filter(|t| t.proto == Protocol::V4) {
        let Some(ls) = loss_stats(tl) else { continue };
        losses.push(ls.loss_fraction);
        let dl = has_diurnal_loss(&ls, 0.01, 3.0);
        diurnal_loss += dl as usize;
        if let Some(r) = detect(tl, &DetectParams::default()) {
            if r.consistent {
                congested += 1;
                congested_and_loss += dl as usize;
            }
        }
    }
    let n = losses.len().max(1);
    let res = LossResult {
        mean_loss: losses.iter().sum::<f64>() / n as f64,
        diurnal_loss_fraction: diurnal_loss as f64 / n as f64,
        congested_with_loss: congested_and_loss as f64 / congested.max(1) as f64,
    };
    println!("EXT loss — §8 future work: packet loss");
    println!(
        "  {} pairs; mean loss {:.2}%; diurnal loss on {:.2}% of pairs",
        n,
        res.mean_loss * 100.0,
        res.diurnal_loss_fraction * 100.0
    );
    println!(
        "  of {congested} RTT-congested pairs, {:.0}% also lose probes diurnally \
         (congested queues drop packets)",
        res.congested_with_loss * 100.0
    );
    res
}

/// Infrastructure-sharing headline numbers.
#[derive(Clone, Copy, Debug)]
pub struct SharedInfraResult {
    /// Mean Jaccard overlap of v4 and v6 router-level paths.
    pub mean_overlap: f64,
    /// Fraction of pairs whose paths share ≥90% of routers.
    pub mostly_shared: f64,
    /// Pearson correlation between path overlap and −|RTTv4 − RTTv6|
    /// (higher sharing should mean smaller RTT difference).
    pub overlap_rttdiff_correlation: Option<f64>,
}

/// §8/§6 extension: how much infrastructure do IPv4 and IPv6 share?
/// Ground truth the paper could not see: the simulator knows every router.
pub fn shared_infrastructure(scenario: &Scenario, t: SimTime) -> SharedInfraResult {
    let pairs = scenario.sample_pair_list(400, 0x5BA6);
    let mut overlaps = Vec::new();
    let mut diffs = Vec::new();
    let mut mostly = 0usize;
    for &(a, b) in pairs.iter() {
        let flow = 1u64;
        let Some(p4) = scenario.oracle.router_path(a, b, Protocol::V4, t, flow) else {
            continue;
        };
        let Some(p6) = scenario.oracle.router_path(a, b, Protocol::V6, t, flow) else {
            continue;
        };
        let set4: std::collections::HashSet<_> =
            p4.hops.iter().map(|h| h.router).collect();
        let set6: std::collections::HashSet<_> =
            p6.hops.iter().map(|h| h.router).collect();
        let inter = set4.intersection(&set6).count() as f64;
        let union = set4.union(&set6).count() as f64;
        let overlap = if union == 0.0 { 1.0 } else { inter / union };
        overlaps.push(overlap);
        mostly += (overlap >= 0.9) as usize;
        let r4 = scenario.net.ideal_rtt(a, b, Protocol::V4, t);
        let r6 = scenario.net.ideal_rtt(a, b, Protocol::V6, t);
        if let (Some(r4), Some(r6)) = (r4, r6) {
            diffs.push(-(r4 - r6).abs());
        } else {
            diffs.push(f64::NAN);
        }
    }
    // Pairwise-complete correlation.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (&o, &d) in overlaps.iter().zip(&diffs) {
        if !d.is_nan() {
            xs.push(o);
            ys.push(d);
        }
    }
    let corr = pearson(&xs, &ys);
    let n = overlaps.len().max(1);
    let res = SharedInfraResult {
        mean_overlap: overlaps.iter().sum::<f64>() / n as f64,
        mostly_shared: mostly as f64 / n as f64,
        overlap_rttdiff_correlation: corr,
    };
    println!("EXT shared — §8 future work: IPv4/IPv6 infrastructure sharing");
    println!(
        "  {} dual-stack pairs; mean router-level path overlap {:.0}%; \
         ≥90% shared for {:.0}% of pairs",
        n,
        res.mean_overlap * 100.0,
        res.mostly_shared * 100.0
    );
    println!(
        "  correlation(overlap, −|RTTv4−RTTv6|) = {:?}  (positive: shared \
         infrastructure ⇒ similar delays — the paper's §6 conjecture)",
        res.overlap_rttdiff_correlation.map(|c| (c * 100.0).round() / 100.0)
    );
    res
}

/// Colocated-campaign headline numbers.
#[derive(Clone, Copy, Debug)]
pub struct ColocResult {
    /// Colocated (same-city) directed pairs found.
    pub pairs: usize,
    /// Their median RTT, ms.
    pub median_rtt_ms: Option<f64>,
    /// Fraction with consistent congestion.
    pub congested_fraction: f64,
}

/// §2.2's colocated-cluster campaign: clusters in the same facility ping
/// each other; intra-facility paths should be fast and almost never
/// congested (they never leave the building).
pub fn coloc(scenario: &Scenario, start: SimTime) -> ColocResult {
    let pairs = colocated_pairs(&scenario.topo);
    if pairs.is_empty() {
        println!("EXT coloc — no colocated clusters at this scale");
        return ColocResult { pairs: 0, median_rtt_ms: None, congested_fraction: 0.0 };
    }
    let cfg = CampaignConfig {
        start,
        end: start + SimDuration::from_days(7),
        interval: SimDuration::from_minutes(30),
        protocols: vec![Protocol::V4],
        threads: s2s_probe::env::threads(),
    };
    let (tls, _) = Campaign::new(cfg)
        .run_ping(&scenario.net, &pairs)
        .expect("in-memory campaign cannot fail");
    let mut rtts = Vec::new();
    let mut congested = 0usize;
    let mut analyzed = 0usize;
    for tl in &tls {
        rtts.extend(tl.valid_rtts());
        // The 30-minute colocated campaign has 336 samples per week.
        let params = DetectParams { min_valid_samples: 300, ..Default::default() };
        if let Some(r) = detect(tl, &params) {
            analyzed += 1;
            congested += r.consistent as usize;
        }
    }
    let median = s2s_stats::quantiles(&rtts, &[50.0]).map(|q| q[0]);
    let res = ColocResult {
        pairs: pairs.len(),
        median_rtt_ms: median,
        congested_fraction: congested as f64 / analyzed.max(1) as f64,
    };
    println!("EXT coloc — §2.2 colocated-cluster campaign");
    println!(
        "  {} colocated directed pairs; median RTT {:?} ms; consistent \
         congestion on {:.1}% (intra-facility paths rarely congest)",
        res.pairs,
        res.median_rtt_ms.map(|m| (m * 100.0).round() / 100.0),
        res.congested_fraction * 100.0
    );
    res
}

/// Available-bandwidth headline numbers.
#[derive(Clone, Copy, Debug)]
pub struct AbwResult {
    /// Median packet-pair estimate across pairs and hours, Mbit/s.
    pub median_mbps: Option<f64>,
    /// Mean busy/quiet available-bandwidth ratio on RTT-congested pairs
    /// (should be < 1: the busy hour eats headroom).
    pub congested_busy_quiet: Option<f64>,
    /// The same ratio on clean pairs (should sit near 1).
    pub clean_busy_quiet: Option<f64>,
}

/// §8 extension: available bandwidth via packet-pair dispersion.
pub fn abw(scenario: &Scenario, start: SimTime) -> AbwResult {
    let all = scenario.sample_pair_list(600, 0xAB3);
    let pairs: Vec<(ClusterId, ClusterId)> = all.chunks(2).map(|c| c[0]).collect();
    // Flag congested pairs first (reusing the ping detector at this window).
    let cfg = CampaignConfig::ping_week(start);
    let (tls, _) = Campaign::new(cfg)
        .run_ping(&scenario.net, &pairs)
        .expect("in-memory campaign cannot fail");
    let mut congested: std::collections::HashSet<(ClusterId, ClusterId)> =
        Default::default();
    for tl in tls.iter().filter(|t| t.proto == Protocol::V4) {
        if let Some(r) = detect(tl, &DetectParams::default()) {
            if r.consistent {
                congested.insert((tl.src, tl.dst));
            }
        }
    }
    // Packet pairs at the pair's *local* quiet hour (05:00) and busy hour
    // (20:00): solar time at the midpoint longitude decides when the
    // diurnal load peaks.
    let mut estimates = Vec::new();
    let mut ratios_congested = Vec::new();
    let mut ratios_clean = Vec::new();
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let day = start + SimDuration::from_days(2 + (i % 3) as u32);
        let lon = (scenario.topo.cluster_city(a).lon
            + scenario.topo.cluster_city(b).lon)
            / 2.0;
        let utc_for = |local_hour: f64| {
            let h = (local_hour - lon / 15.0).rem_euclid(24.0);
            day + SimDuration::from_minutes((h * 60.0) as u32)
        };
        let quiet_t = utc_for(5.0);
        let busy_t = utc_for(20.0);
        let q = scenario.net.packet_pair(a, b, Protocol::V4, quiet_t, 1500, i as u64);
        let bz = scenario.net.packet_pair(a, b, Protocol::V4, busy_t, 1500, i as u64);
        if let (Some(q), Some(bz)) = (q, bz) {
            estimates.push(q.estimated_mbps);
            estimates.push(bz.estimated_mbps);
            // Ratios are only meaningful when the whole path shares a time
            // zone band: a transcontinental path's tight link may sit 12
            // hours away from the pair midpoint's solar time.
            if scenario.topo.cluster_city(a).continent
                == scenario.topo.cluster_city(b).continent
            {
                let ratio = bz.estimated_mbps / q.estimated_mbps;
                if congested.contains(&(a, b)) {
                    ratios_congested.push(ratio);
                } else {
                    ratios_clean.push(ratio);
                }
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    };
    let res = AbwResult {
        median_mbps: quantiles(&estimates, &[50.0]).map(|q| q[0]),
        congested_busy_quiet: mean(&ratios_congested),
        clean_busy_quiet: mean(&ratios_clean),
    };
    println!("EXT abw — §8 future work: available bandwidth (packet pairs)");
    println!(
        "  {} pairs; median tight-link estimate {:?} Mbit/s",
        pairs.len(),
        res.median_mbps.map(|m| m.round())
    );
    println!(
        "  busy/quiet available-bandwidth ratio: congested pairs {:?} vs clean          pairs {:?} (congestion eats headroom exactly when RTTs bump)",
        res.congested_busy_quiet.map(|r| (r * 100.0).round() / 100.0),
        res.clean_busy_quiet.map(|r| (r * 100.0).round() / 100.0),
    );
    res
}
