//! One module per table/figure of the paper (see DESIGN.md §3 for the
//! experiment index). Every function prints paper-style output and returns
//! the headline numbers so tests and EXPERIMENTS.md can assert on them.

pub mod congestion;
pub mod dualstack;
pub mod example;
pub mod extensions;
pub mod faultsweep;
pub mod longterm;
pub mod ownercheck;
pub mod shortterm;

use crate::scenario::Scenario;
use s2s_core::timeline::TraceTimeline;
use s2s_core::Analysis;
use s2s_probe::store::StoreStats;
use s2s_probe::{CampaignReport, FaultProfile, RetryPolicy};
use s2s_types::{ClusterId, Coverage};

/// The long-term data set shared by Table 1 and Figs. 2–6 and 10.
pub struct LongTermData {
    /// Directed pairs, both directions adjacent.
    pub pairs: Vec<(ClusterId, ClusterId)>,
    /// One timeline per (pair, protocol), pair-major, protocol-minor
    /// (V4 then V6).
    pub timelines: Vec<TraceTimeline>,
    /// What the measurement plane did while collecting (all-delivered under
    /// the default quiet fault profile).
    pub report: CampaignReport,
    /// Intern-table statistics of the columnar arena the corpus passed
    /// through, when collected via the columnar plane (`None` on the legacy
    /// record-at-a-time path).
    pub arena: Option<StoreStats>,
}

impl LongTermData {
    /// Runs the long-term campaign at the scenario's scale, behind the
    /// fault profile configured via `S2S_FAULT_*` (quiet by default, which
    /// yields the bit-identical dataset of the plain runner).
    pub fn collect(scenario: &Scenario) -> LongTermData {
        LongTermData::collect_with(scenario, &FaultProfile::from_env())
    }

    /// [`LongTermData::collect`] with an explicit fault profile. Collection
    /// goes through the columnar plane: records intern into a
    /// [`s2s_probe::TraceStore`] and the sharded analysis driver (thread
    /// count from `S2S_THREADS` / `--threads`) produces the timelines —
    /// byte-identical to the pre-columnar record-at-a-time path, which the
    /// equivalence suite pins via
    /// [`Scenario::long_term_timelines_faulty`].
    pub fn collect_with(scenario: &Scenario, profile: &FaultProfile) -> LongTermData {
        let pairs = scenario.sample_pair_list(scenario.scale.pairs / 2, 0x10e6);
        let (store, report) =
            scenario.long_term_store_faulty(&pairs, profile, &RetryPolicy::default());
        let timelines = Analysis::new(&store).timelines(&scenario.ip2asn);
        LongTermData { pairs, timelines, report, arena: Some(store.stats()) }
    }

    /// The pre-columnar collection path: annotate record-by-record into
    /// streaming [`s2s_core::TimelineBuilder`]s. Test-only equivalence
    /// baseline; production collection is always columnar.
    #[cfg(test)]
    pub fn collect_legacy_with(scenario: &Scenario, profile: &FaultProfile) -> LongTermData {
        let pairs = scenario.sample_pair_list(scenario.scale.pairs / 2, 0x10e6);
        let (timelines, report) =
            scenario.long_term_timelines_faulty(&pairs, profile, &RetryPolicy::default());
        LongTermData { pairs, timelines, report, arena: None }
    }

    /// Aggregate sample coverage over every timeline in the data set.
    pub fn coverage(&self) -> Coverage {
        let usable = self.timelines.iter().map(|t| t.usable_samples()).sum();
        let offered = self.timelines.iter().map(|t| t.samples.len()).sum();
        Coverage::new(usable, offered)
    }

    /// Timelines of one protocol.
    pub fn by_proto(&self, proto: s2s_types::Protocol) -> Vec<&TraceTimeline> {
        self.timelines.iter().filter(|t| t.proto == proto).collect()
    }

    /// (forward, reverse) timeline pairs of one protocol: sample_pair_list
    /// emits (a,b) followed by (b,a), and timelines are pair-major with two
    /// protocols each, so pair i's forward-v4 sits at 4i and reverse-v4 at
    /// 4i + 2 (v6 at +1 / +3).
    pub fn direction_pairs(
        &self,
        proto: s2s_types::Protocol,
    ) -> Vec<(&TraceTimeline, &TraceTimeline)> {
        let off = match proto {
            s2s_types::Protocol::V4 => 0,
            s2s_types::Protocol::V6 => 1,
        };
        let mut out = Vec::new();
        let mut i = 0;
        while 4 * i + 3 < self.timelines.len() {
            out.push((&self.timelines[4 * i + off], &self.timelines[4 * i + 2 + off]));
            i += 1;
        }
        out
    }

    /// (v4, v6) timeline pairs per directed pair.
    pub fn protocol_pairs(&self) -> Vec<(&TraceTimeline, &TraceTimeline)> {
        self.timelines
            .chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| (&c[0], &c[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scale, Scenario};
    use s2s_types::Protocol;

    fn micro() -> (Scenario, LongTermData) {
        let scenario = Scenario::build(Scale {
            seed: 3,
            clusters: 12,
            days: 12,
            pairs: 16,
            ping_pairs: 30,
            cong_pairs: 8,
        });
        let data = LongTermData::collect(&scenario);
        (scenario, data)
    }

    #[test]
    fn experiment_layer_smoke() {
        let (scenario, data) = micro();
        // Table 1: fractions are a partition of the completed traces.
        let t1 = longterm::table1(&data, Protocol::V4);
        let (a, b, c) = t1.fractions;
        assert!((a + b + c - 1.0).abs() < 1e-9);
        assert!(t1.completed > 500);

        // Fig. 2a/3a/3b on the same corpus.
        let f2 = longterm::fig2a(&data, Protocol::V4);
        assert!((0.0..=1.0).contains(&f2.single_path_fraction));
        assert!(f2.p80_paths >= 1.0);
        let dominant = longterm::fig3a(&data, Protocol::V4);
        assert!((0.0..=1.0).contains(&dominant));
        let f3 = longterm::fig3b(&data, Protocol::V4);
        assert!(f3.no_change_fraction <= f2.single_path_fraction + 1e-9,
            "single-path timelines cannot have changes");

        // Fig. 6 prevalence fractions are monotone in the threshold.
        let f6 = longterm::fig6(&data, Protocol::V4);
        assert!(f6[0].frac_prevalent_20pct >= f6[1].frac_prevalent_20pct);
        assert!(f6[1].frac_prevalent_20pct >= f6[2].frac_prevalent_20pct);

        // Fig. 10a/10b run and produce consistent values.
        let f10a = dualstack::fig10a(&data);
        assert!(f10a.n.1 <= f10a.n.0, "same-path subset cannot exceed all");
        if let Some(s) = f10a.all {
            assert!(s.frac_similar + s.frac_v4_saves_big + s.frac_v6_saves_big <= 1.0 + 1e-9);
        }
        if let Some(f10b) = dualstack::fig10b(&scenario, &data, Protocol::V4) {
            assert!(f10b.median >= 1.0, "inflation below light speed");
            assert!(f10b.p90 >= f10b.median);
        }
    }

    #[test]
    fn columnar_collection_matches_the_legacy_baseline() {
        let (scenario, data) = micro();
        let legacy =
            LongTermData::collect_legacy_with(&scenario, &FaultProfile::from_env());
        assert_eq!(data.pairs, legacy.pairs);
        assert_eq!(data.timelines, legacy.timelines);
        assert_eq!(
            format!("{:?}", data.report),
            format!("{:?}", legacy.report)
        );
        assert!(legacy.arena.is_none());
        assert!(data.arena.is_some());
    }

    #[test]
    fn direction_pairs_align_with_sampling() {
        let (_, data) = micro();
        for (f, r) in data.direction_pairs(Protocol::V4) {
            assert_eq!(f.src, r.dst);
            assert_eq!(f.dst, r.src);
            assert_eq!(f.proto, Protocol::V4);
        }
        let v4 = data.by_proto(Protocol::V4).len();
        let v6 = data.by_proto(Protocol::V6).len();
        assert_eq!(v4, v6);
        assert_eq!(v4 + v6, data.timelines.len());
    }
}
