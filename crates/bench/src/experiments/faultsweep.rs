//! Fault sweep: are the paper's figures stable under a degraded
//! measurement plane?
//!
//! The paper's platform lost data too — Table 1 is an accounting of
//! exactly that — so a reproduction should demonstrate its headline
//! numbers don't hinge on a perfect plane. This experiment reruns a
//! long-term campaign under increasing probe-loss rates and reports, per
//! rate: what the plane delivered (with and without retries), the sample
//! coverage of the resulting timelines, and the Fig. 2a / Fig. 3b
//! headline statistics computed through the coverage-checked analyses.

use crate::scenario::Scenario;
use s2s_core::changes::detect_changes_checked;
use s2s_core::timeline::{TimelineBuilder, TraceTimeline};
use s2s_probe::{Campaign, CampaignConfig, FaultProfile, RetryPolicy, TraceOptions};
use s2s_stats::Ecdf;
use s2s_types::{Coverage, SimDuration, SimTime};

use super::longterm::MIN_TIMELINE_COVERAGE;

/// One row of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct FaultSweepRow {
    /// The injected per-attempt probe-loss (drop) rate.
    pub drop_rate: f64,
    /// Slot coverage with the default bounded-retry policy.
    pub coverage_retry: Coverage,
    /// Slot coverage with retries disabled (one attempt per slot).
    pub coverage_no_retry: Coverage,
    /// Fraction of analyzable timelines with a single AS path (Fig. 2a).
    pub single_path_fraction: f64,
    /// Routing changes at the 90th percentile of timelines (Fig. 3b).
    pub p90_changes: f64,
    /// Timelines refused by the coverage floor.
    pub refused_timelines: usize,
}

fn sweep_campaign(
    scenario: &Scenario,
    pairs: &[(s2s_types::ClusterId, s2s_types::ClusterId)],
    cfg: &CampaignConfig,
    profile: &FaultProfile,
    retry: &RetryPolicy,
) -> (Vec<TraceTimeline>, s2s_probe::CampaignReport) {
    let map = &scenario.ip2asn;
    let (builders, report) = Campaign::new(cfg.clone())
        .faults(*profile)
        .retry(*retry)
        .run_traceroute(
            &scenario.net,
            pairs,
            TraceOptions::default(),
            |s, d, p| TimelineBuilder::new(s, d, p, map),
            |b, rec| b.push(rec),
        )
        .expect("in-memory campaign cannot fail");
    (builders.into_iter().map(TimelineBuilder::finish).collect(), report)
}

/// Runs the sweep and prints the stability table.
pub fn fault_sweep(scenario: &Scenario) -> Vec<FaultSweepRow> {
    // A bounded slice of the long-term campaign: enough samples per
    // timeline (~8/day) for change statistics, small enough to rerun at
    // four loss rates.
    let pairs = scenario.sample_pair_list((scenario.scale.pairs / 2).clamp(8, 40), 0xFA17);
    let days = scenario.scale.days.clamp(10, 45);
    let cfg = CampaignConfig {
        start: SimTime::T0,
        end: SimTime::from_days(days),
        interval: SimDuration::from_hours(3),
        protocols: vec![s2s_types::Protocol::V4, s2s_types::Protocol::V6],
        threads: s2s_probe::campaign::default_threads(),
    };

    println!(
        "FAULT SWEEP — figure stability under probe loss ({} directed pairs, {days} days)",
        pairs.len()
    );
    println!(
        "  {:>9}  {:>16}  {:>16}  {:>12}  {:>11}  {:>7}",
        "drop rate", "delivered(retry)", "delivered(1-try)", "single-path", "p90 changes",
        "refused"
    );

    let mut rows = Vec::new();
    for &drop_rate in &[0.0, 0.05, 0.10, 0.20] {
        let profile = FaultProfile { drop_rate, ..FaultProfile::default() };
        let (timelines, report) =
            sweep_campaign(scenario, &pairs, &cfg, &profile, &RetryPolicy::default());
        let (_, report_no_retry) = sweep_campaign(
            scenario,
            &pairs,
            &cfg,
            &profile,
            &RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        );

        let mut refused = 0usize;
        let mut single = 0usize;
        let mut analyzed = 0usize;
        let mut changes = Vec::new();
        for tl in &timelines {
            match detect_changes_checked(tl, MIN_TIMELINE_COVERAGE) {
                Ok((stats, _)) => {
                    analyzed += 1;
                    single += (tl.unique_paths() <= 1) as usize;
                    changes.push(stats.changes as f64);
                }
                Err(_) => refused += 1,
            }
        }
        let row = FaultSweepRow {
            drop_rate,
            coverage_retry: report.coverage(),
            coverage_no_retry: report_no_retry.coverage(),
            single_path_fraction: single as f64 / analyzed.max(1) as f64,
            p90_changes: Ecdf::new(changes).quantile(0.9).unwrap_or(0.0),
            refused_timelines: refused,
        };
        println!(
            "  {:>8.0}%  {:>15.2}%  {:>15.2}%  {:>11.1}%  {:>11.1}  {:>7}",
            100.0 * row.drop_rate,
            100.0 * row.coverage_retry.fraction(),
            100.0 * row.coverage_no_retry.fraction(),
            100.0 * row.single_path_fraction,
            row.p90_changes,
            row.refused_timelines
        );
        rows.push(row);
    }
    println!(
        "  (bounded retry recovers nearly all losses: delivered(retry) ≈ 100% while \
         delivered(1-try) tracks 1 − drop rate; figure headlines stay stable)"
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn sweep_shows_retry_recovery_and_stable_figures() {
        let scenario = Scenario::build(Scale {
            seed: 11,
            clusters: 12,
            days: 10,
            pairs: 16,
            ping_pairs: 20,
            cong_pairs: 6,
        });
        let rows = fault_sweep(&scenario);
        assert_eq!(rows.len(), 4);
        // Zero-rate row is lossless either way.
        assert!((rows[0].coverage_retry.fraction() - 1.0).abs() < 1e-12);
        assert!((rows[0].coverage_no_retry.fraction() - 1.0).abs() < 1e-12);
        for w in rows.windows(2) {
            assert!(
                w[1].coverage_no_retry.fraction() <= w[0].coverage_no_retry.fraction(),
                "single-try coverage must fall as loss rises"
            );
        }
        // At 5% loss the bounded retry keeps coverage near-perfect and the
        // Fig. 2a headline within a few points of the lossless run.
        let r5 = &rows[1];
        assert!(r5.coverage_retry.fraction() > 0.999, "{}", r5.coverage_retry);
        assert!(r5.coverage_no_retry.fraction() < 0.97);
        assert!(
            (r5.single_path_fraction - rows[0].single_path_fraction).abs() < 0.1,
            "5% loss must not move the single-path fraction: {} vs {}",
            r5.single_path_fraction,
            rows[0].single_path_fraction
        );
        assert_eq!(r5.refused_timelines, 0, "5% loss stays far above the floor");
    }
}
