//! Long-term experiments: Table 1 and Figs. 2–6.

use super::LongTermData;
use crate::render::{print_ecdf, print_heatmap};
use s2s_core::annotate::CompletenessCounts;
use s2s_core::bestpath::{best_path_analysis, suboptimal_prevalence};
use s2s_core::changes::{as_path_pairs, detect_changes_checked, path_stats};
use s2s_core::timeline::TraceTimeline;
use s2s_stats::{Ecdf, HeatMap};
use s2s_types::{Coverage, Protocol, SimDuration};

/// The default coverage floor for per-timeline analyses: below half the
/// offered schedule, a timeline's change/lifetime statistics are more gap
/// artifact than signal and the analysis refuses (see
/// [`s2s_core::changes::detect_changes_checked`]).
pub const MIN_TIMELINE_COVERAGE: f64 = 0.5;

fn aggregate_coverage<'a>(tls: impl IntoIterator<Item = &'a &'a TraceTimeline>) -> Coverage {
    let mut usable = 0;
    let mut offered = 0;
    for t in tls {
        usable += t.usable_samples();
        offered += t.samples.len();
    }
    Coverage::new(usable, offered)
}

const INTERVAL: SimDuration = SimDuration(180);

/// Table 1 headline numbers per protocol.
#[derive(Clone, Copy, Debug)]
pub struct Table1Result {
    /// (complete, missing-AS, missing-IP) fractions.
    pub fractions: (f64, f64, f64),
    /// Fraction of completed traceroutes with AS-path loops.
    pub loop_fraction: f64,
    /// Completed traceroutes counted.
    pub completed: u64,
}

/// Table 1: traceroute completeness mix.
pub fn table1(data: &LongTermData, proto: Protocol) -> Table1Result {
    let mut counts = CompletenessCounts::default();
    for tl in data.by_proto(proto) {
        let c = &tl.counts;
        counts.complete += c.complete;
        counts.missing_as_level += c.missing_as_level;
        counts.missing_ip_level += c.missing_ip_level;
        counts.incomplete += c.incomplete;
        counts.loops += c.loops;
    }
    let fr = counts.fractions();
    println!("TABLE 1 — {proto} (completed traceroutes: {})", counts.completed());
    println!("  complete AS-level data   {:>6.2}%   (paper: 70.30% v4 / 64.03% v6)", fr.0 * 100.0);
    println!("  missing AS-level data    {:>6.2}%   (paper:  1.58% v4 /  3.32% v6)", fr.1 * 100.0);
    println!("  missing IP-level data    {:>6.2}%   (paper: 28.12% v4 / 32.65% v6)", fr.2 * 100.0);
    println!(
        "  AS-path loops (excluded) {:>6.2}%   (paper:  2.16% v4 /  5.50% v6)",
        counts.loop_fraction() * 100.0
    );
    Table1Result {
        fractions: fr,
        loop_fraction: counts.loop_fraction(),
        completed: counts.completed(),
    }
}

/// Fig. 2a headline: (fraction single-path, paths at the 80th percentile).
#[derive(Clone, Copy, Debug)]
pub struct Fig2aResult {
    /// Fraction of timelines with exactly one AS path.
    pub single_path_fraction: f64,
    /// Unique-path count at the 80th percentile of timelines.
    pub p80_paths: f64,
}

/// Fig. 2a: ECDF of unique AS paths per trace timeline.
pub fn fig2a(data: &LongTermData, proto: Protocol) -> Fig2aResult {
    let tls = data.by_proto(proto);
    let counts: Vec<f64> = tls
        .iter()
        .filter(|t| t.usable_samples() > 0)
        .map(|t| t.unique_paths() as f64)
        .collect();
    let e = Ecdf::new(counts.clone());
    let single = e.fraction_at_or_below(1.0);
    let p80 = e.quantile(0.8).unwrap_or(0.0);
    println!("FIG 2a — unique AS paths per trace timeline ({proto})");
    println!("  sample coverage: {}", aggregate_coverage(&tls));
    print_ecdf("paths per timeline", &counts, 11);
    println!(
        "  single-path timelines: {:.1}%  (paper: 18% v4 / 16% v6); 80th pct: {p80} \
         (paper: 5 v4 / 6 v6)",
        single * 100.0
    );
    Fig2aResult { single_path_fraction: single, p80_paths: p80 }
}

/// Fig. 2b: ECDF of forward/reverse AS-path pairs per server pair.
pub fn fig2b(data: &LongTermData, proto: Protocol) -> f64 {
    let counts: Vec<f64> = data
        .direction_pairs(proto)
        .iter()
        .map(|(f, r)| as_path_pairs(f, r) as f64)
        .filter(|&c| c > 0.0)
        .collect();
    let e = Ecdf::new(counts.clone());
    let p80 = e.quantile(0.8).unwrap_or(0.0);
    println!("FIG 2b — AS-path pairs per server pair ({proto})");
    print_ecdf("path pairs per server pair", &counts, 11);
    println!("  80th percentile: {p80}  (paper: 8 v4 / 9 v6)");
    p80
}

/// Fig. 3a: ECDF of the prevalence of each timeline's most popular path.
/// Returns the fraction of timelines whose popular path has prevalence
/// ≥ 0.5 (paper: ~80%).
pub fn fig3a(data: &LongTermData, proto: Protocol) -> f64 {
    let prevalences: Vec<f64> = data
        .by_proto(proto)
        .iter()
        .filter_map(|t| {
            let s = path_stats(t, INTERVAL);
            s.popular.map(|p| s.prevalence[p])
        })
        .collect();
    let e = Ecdf::new(prevalences.clone());
    let dominant = e.fraction_at_or_above(0.5);
    println!("FIG 3a — prevalence of the most popular AS path ({proto})");
    print_ecdf("popular-path prevalence", &prevalences, 11);
    println!(
        "  timelines with a dominant (≥50% prevalence) path: {:.1}%  (paper: ~80%)",
        dominant * 100.0
    );
    dominant
}

/// Fig. 3b headline numbers.
#[derive(Clone, Copy, Debug)]
pub struct Fig3bResult {
    /// Fraction of timelines with zero changes.
    pub no_change_fraction: f64,
    /// Changes at the 90th percentile of timelines.
    pub p90_changes: f64,
}

/// Fig. 3b: ECDF of routing changes per timeline. Timelines below the
/// coverage floor are refused by the checked analysis and reported, not
/// silently mixed in.
pub fn fig3b(data: &LongTermData, proto: Protocol) -> Fig3bResult {
    let tls = data.by_proto(proto);
    let mut refused = 0usize;
    let counts: Vec<f64> = tls
        .iter()
        .filter(|t| t.usable_samples() > 0)
        .filter_map(|t| match detect_changes_checked(t, MIN_TIMELINE_COVERAGE) {
            Ok((stats, _)) => Some(stats.changes as f64),
            Err(_) => {
                refused += 1;
                None
            }
        })
        .collect();
    let e = Ecdf::new(counts.clone());
    let none = e.fraction_at_or_below(0.0);
    let p90 = e.quantile(0.9).unwrap_or(0.0);
    println!("FIG 3b — routing changes per trace timeline ({proto})");
    println!(
        "  sample coverage: {}; timelines below the {:.0}% floor: {refused}",
        aggregate_coverage(&tls),
        100.0 * MIN_TIMELINE_COVERAGE
    );
    print_ecdf("changes per timeline", &counts, 11);
    println!(
        "  zero-change timelines: {:.1}% (paper: 18% v4 / 16% v6); \
         90th pct: {p90} (paper: ≤30)",
        none * 100.0
    );
    Fig3bResult { no_change_fraction: none, p90_changes: p90 }
}

/// Figs. 4/5 result: the heat map plus tail statistics.
#[derive(Clone, Debug)]
pub struct HeatmapResult {
    /// The binned map.
    pub heatmap: HeatMap,
    /// Baseline (Fig. 4) or spike (Fig. 5) delta at the 90th percentile of
    /// sub-optimal paths.
    pub p90_delta_ms: f64,
    /// Delta at the 80th percentile.
    pub p80_delta_ms: f64,
}

/// Fig. 4 (use_p90 = false) / Fig. 5 (use_p90 = true): heat map of RTT
/// increase vs AS-path lifetime.
pub fn fig45(data: &LongTermData, proto: Protocol, use_p90: bool) -> Option<HeatmapResult> {
    let mut points: Vec<(f64, f64)> = Vec::new();
    for tl in data.by_proto(proto) {
        if let Some(a) = best_path_analysis(tl, INTERVAL) {
            for d in &a.deltas {
                let delta = if use_p90 { d.delta_p90_ms } else { d.delta_p10_ms };
                points.push((d.lifetime_hours, delta.max(0.0)));
            }
        }
    }
    let hm = HeatMap::from_points(&points)?;
    let deltas: Vec<f64> = points.iter().map(|p| p.1).collect();
    let e = Ecdf::new(deltas);
    let p90 = e.quantile(0.9).unwrap();
    let p80 = e.quantile(0.8).unwrap();
    let (fig, pct) = if use_p90 { ("FIG 5", "90th") } else { ("FIG 4", "10th") };
    println!("{fig} — Δ{pct}-percentile RTT vs AS-path lifetime ({proto})");
    print_heatmap(
        &format!("{fig} {proto}"),
        &hm,
        "lifetime (hours)",
        &format!("Δ{pct}-pct RTT (ms)"),
    );
    if use_p90 {
        println!("  90th pct of Δ90 deltas: {p90:.1} ms  (paper: ≥70 ms for 10% of paths)");
    } else {
        println!(
            "  90th pct of Δ10 deltas: {p90:.1} ms (paper: 48.3 v4 / 59 v6); \
             80th pct: {p80:.1} ms (paper: ~25 ms)"
        );
    }
    Some(HeatmapResult { heatmap: hm, p90_delta_ms: p90, p80_delta_ms: p80 })
}

/// Correlation direction of the Fig. 4 relationship: average delta among
/// short-lived paths minus among long-lived paths (positive = short-lived
/// paths are the expensive ones, the paper's key observation).
pub fn fig4_shortlived_premium(data: &LongTermData, proto: Protocol) -> Option<f64> {
    let mut points: Vec<(f64, f64)> = Vec::new();
    for tl in data.by_proto(proto) {
        if let Some(a) = best_path_analysis(tl, INTERVAL) {
            for d in &a.deltas {
                points.push((d.lifetime_hours, d.delta_p10_ms.max(0.0)));
            }
        }
    }
    if points.len() < 20 {
        return None;
    }
    let mut lifetimes: Vec<f64> = points.iter().map(|p| p.0).collect();
    lifetimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = lifetimes[lifetimes.len() / 2];
    let short: Vec<f64> =
        points.iter().filter(|p| p.0 <= median).map(|p| p.1).collect();
    let long: Vec<f64> = points.iter().filter(|p| p.0 > median).map(|p| p.1).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Some(mean(&short) - mean(&long))
}

/// Fig. 6 result per (protocol, threshold).
#[derive(Clone, Copy, Debug)]
pub struct Fig6Result {
    /// Threshold in ms.
    pub threshold_ms: f64,
    /// Fraction of timelines whose sub-optimal (≥ threshold) paths had a
    /// summed prevalence ≥ 0.2 — the paper's "4% (7%) of routing changes
    /// increase RTTs by ≥50 ms for ≥20% of the study period" view.
    pub frac_prevalent_20pct: f64,
}

/// Fig. 6: ECDFs of the summed prevalence of sub-optimal paths.
pub fn fig6(data: &LongTermData, proto: Protocol) -> Vec<Fig6Result> {
    let mut out = Vec::new();
    println!("FIG 6 — prevalence of sub-optimal AS paths ({proto})");
    for threshold in [20.0, 50.0, 100.0] {
        let prevalences: Vec<f64> = data
            .by_proto(proto)
            .iter()
            .filter(|t| t.usable_samples() > 0)
            .map(|t| suboptimal_prevalence(t, INTERVAL, threshold))
            .collect();
        let e = Ecdf::new(prevalences.clone());
        let frac = e.fraction_at_or_above(0.2);
        println!(
            "  ≥{threshold:>5.0} ms: {:.2}% of timelines had such paths for ≥20% of \
             the period",
            frac * 100.0
        );
        out.push(Fig6Result { threshold_ms: threshold, frac_prevalent_20pct: frac });
    }
    println!("  (paper: ≥50 ms ≥20%-of-period for ~4% v4 / ~7% v6 of timelines;");
    println!("   ≥100 ms for 1.1% v4 / 1.3% v6 at ≥20%/40% prevalence)");
    out
}
