//! Shared scenario construction for the benchmark harness.
//!
//! The `reproduce` binary and the Criterion benches all run on the same
//! simulated world: one seeded topology + dynamics + congestion model, and
//! pair samples drawn deterministically from the cluster mesh. Scale knobs
//! come from `S2S_*` environment variables (see DESIGN.md §8) so the same
//! code serves quick smoke runs and full reproductions.

pub mod cli;
pub mod experiments;
pub mod fabric;
pub mod render;
pub mod service;
pub mod scenario;

pub use render::{print_ecdf, print_heatmap};
pub use scenario::{Scale, Scenario};
