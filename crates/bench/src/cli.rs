//! The `reproduce` command line, as a typed parser.
//!
//! The binary's surface is five subcommands —
//!
//! * `run [ids…] [flags]` — batch reproduction of tables/figures,
//! * `serve [flags]` — the always-on measurement service ([`crate::service`]),
//! * `worker` — the fabric's worker entry point (spawned, never typed),
//! * `snapshot <path>` — inspect a snapshot file or shard directory,
//! * `faults [flags]` — the fault-robustness sweep,
//!
//! plus `print-config`. Parsing is pure (`&[String] → Result<Parsed,
//! String>`): no process exit, no env reads, no printing — the binary maps
//! `Err` to [`ExitCode::Config`](s2s_types::ExitCode::Config) and
//! [`Parsed::deprecations`] to stderr notes. The pre-subcommand spellings
//! (`reproduce fig4 --threads 2`, `reproduce --print-config`) still parse
//! as [`Command::Run`] with a deprecation note, so nothing scripted
//! against the old binary breaks.

use std::path::PathBuf;

/// Flags shared by the batch subcommands (`run`, `faults`, and the
/// deprecated bare spelling).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunArgs {
    /// Experiment ids to run (empty = all). Validated against the
    /// experiment table by the binary, not the parser.
    pub ids: Vec<String>,
    /// `--metrics-json <path>`: write the registry snapshot there.
    pub metrics_json: Option<String>,
    /// `--threads <n>`: overrides `S2S_THREADS`.
    pub threads: Option<usize>,
    /// `--workers <n>`: collect through the scale-out fabric.
    pub workers: Option<usize>,
    /// `--snapshot <path>`: columnar persistence (write, or reopen if it
    /// exists).
    pub snapshot: Option<PathBuf>,
    /// `--print-config`: dump resolved knobs and exit.
    pub print_config: bool,
}

/// Flags of the `serve` subcommand.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeArgs {
    /// `--epochs <n>`: advance at most this many epochs (default: the
    /// whole schedule) — makes scripted smoke runs and kill drills cheap.
    pub epochs: Option<usize>,
    /// `--metrics-json <path>`: write the registry snapshot on shutdown.
    pub metrics_json: Option<String>,
    /// `--threads <n>`: overrides `S2S_THREADS`.
    pub threads: Option<usize>,
    /// `--snapshot <path>`: checkpoint path (resumes if it exists);
    /// overrides `S2S_SNAPSHOT_PATH`.
    pub snapshot: Option<PathBuf>,
}

/// One parsed `reproduce` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Batch reproduction (`run`, or the deprecated bare spelling).
    Run(RunArgs),
    /// The always-on measurement daemon.
    Serve(ServeArgs),
    /// Fabric worker mode — dispatched before anything prints.
    Worker,
    /// Inspect a snapshot file or shard directory.
    Snapshot(PathBuf),
    /// The fault-robustness sweep (`run faults` with a door of its own).
    Faults(RunArgs),
    /// Dump every resolved `S2S_*` knob and exit.
    PrintConfig,
}

/// A parse result: the command plus any deprecation notes the binary
/// should print to stderr before proceeding.
#[derive(Clone, Debug, PartialEq)]
pub struct Parsed {
    /// What to do.
    pub command: Command,
    /// One line per deprecated spelling encountered.
    pub deprecations: Vec<String>,
}

fn flag_value(flag: &str, it: &mut std::slice::Iter<'_, String>) -> Result<String, String> {
    it.next().cloned().ok_or_else(|| format!("{flag} needs an argument"))
}

fn flag_count(flag: &str, it: &mut std::slice::Iter<'_, String>) -> Result<usize, String> {
    let v = flag_value(flag, it)?;
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} needs a positive integer, got '{v}'")),
    }
}

/// Parses the flags shared by `run`/`faults`; `allow_ids` rejects bare
/// (non-flag) arguments for subcommands that take none.
fn parse_run(args: &[String], allow_ids: bool) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--print-config" => out.print_config = true,
            "--metrics-json" => out.metrics_json = Some(flag_value(a, &mut it)?),
            "--threads" => out.threads = Some(flag_count(a, &mut it)?),
            "--workers" => out.workers = Some(flag_count(a, &mut it)?),
            "--snapshot" => out.snapshot = Some(PathBuf::from(flag_value(a, &mut it)?)),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            other if allow_ids => out.ids.push(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(out)
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--epochs" => out.epochs = Some(flag_count(a, &mut it)?),
            "--metrics-json" => out.metrics_json = Some(flag_value(a, &mut it)?),
            "--threads" => out.threads = Some(flag_count(a, &mut it)?),
            "--snapshot" => out.snapshot = Some(PathBuf::from(flag_value(a, &mut it)?)),
            other => return Err(format!("unknown serve argument '{other}'")),
        }
    }
    Ok(out)
}

/// Parses one invocation (`argv[1..]`). Pure: the only side channel is
/// the returned deprecation notes.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut deprecations = Vec::new();
    let command = match args.first().map(String::as_str) {
        Some("run") => Command::Run(parse_run(&args[1..], true)?),
        Some("serve") => Command::Serve(parse_serve(&args[1..])?),
        Some("worker") => {
            if args.len() > 1 {
                return Err(format!("worker takes no arguments, got '{}'", args[1]));
            }
            Command::Worker
        }
        Some("snapshot") => {
            let [path] = &args[1..] else {
                return Err("snapshot needs exactly one path argument".to_string());
            };
            Command::Snapshot(PathBuf::from(path))
        }
        Some("faults") => Command::Faults(parse_run(&args[1..], false)?),
        Some("print-config") => {
            if args.len() > 1 {
                return Err(format!("print-config takes no arguments, got '{}'", args[1]));
            }
            Command::PrintConfig
        }
        // The pre-subcommand spelling: experiment ids and flags directly.
        _ => {
            let run = parse_run(args, true)?;
            if !args.is_empty() {
                deprecations.push(
                    "note: bare `reproduce [ids…] [flags]` is deprecated; \
                     spell it `reproduce run [ids…] [flags]`"
                        .to_string(),
                );
            }
            if run.print_config {
                deprecations.push(
                    "note: `--print-config` is deprecated; spell it \
                     `reproduce print-config`"
                        .to_string(),
                );
            }
            Command::Run(run)
        }
    };
    Ok(Parsed { command, deprecations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn run_subcommand_parses_ids_and_flags() {
        let p = parse(&argv("run fig4 fig6 --threads 2 --snapshot /tmp/x.snap")).unwrap();
        assert!(p.deprecations.is_empty());
        let Command::Run(a) = p.command else { panic!("not run") };
        assert_eq!(a.ids, vec!["fig4", "fig6"]);
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.snapshot, Some(PathBuf::from("/tmp/x.snap")));
        assert_eq!(a.workers, None);
        assert!(!a.print_config);
    }

    #[test]
    fn bare_spelling_still_parses_with_a_note() {
        let p = parse(&argv("fig4 --workers 3 --metrics-json m.json")).unwrap();
        assert_eq!(p.deprecations.len(), 1, "one deprecation note: {:?}", p.deprecations);
        let Command::Run(a) = p.command else { panic!("not run") };
        assert_eq!(a.ids, vec!["fig4"]);
        assert_eq!(a.workers, Some(3));
        assert_eq!(a.metrics_json.as_deref(), Some("m.json"));
    }

    #[test]
    fn empty_invocation_is_a_clean_run_of_everything() {
        let p = parse(&[]).unwrap();
        assert!(p.deprecations.is_empty(), "bare `reproduce` is not deprecated");
        assert_eq!(p.command, Command::Run(RunArgs::default()));
    }

    #[test]
    fn legacy_print_config_flag_notes_the_new_spelling() {
        let p = parse(&argv("--print-config")).unwrap();
        let Command::Run(a) = &p.command else { panic!("not run") };
        assert!(a.print_config);
        assert!(p.deprecations.iter().any(|d| d.contains("print-config")));
        // The new spelling is its own command, no notes.
        let p = parse(&argv("print-config")).unwrap();
        assert_eq!(p.command, Command::PrintConfig);
        assert!(p.deprecations.is_empty());
    }

    #[test]
    fn serve_parses_its_flags() {
        let p = parse(&argv("serve --epochs 12 --snapshot /tmp/s.snap --threads 4")).unwrap();
        let Command::Serve(a) = p.command else { panic!("not serve") };
        assert_eq!(a.epochs, Some(12));
        assert_eq!(a.snapshot, Some(PathBuf::from("/tmp/s.snap")));
        assert_eq!(a.threads, Some(4));
        assert!(parse(&argv("serve fig4")).is_err(), "serve takes no ids");
        assert!(parse(&argv("serve --epochs 0")).is_err(), "epochs must be >= 1");
    }

    #[test]
    fn worker_snapshot_and_faults_parse() {
        assert_eq!(parse(&argv("worker")).unwrap().command, Command::Worker);
        assert!(parse(&argv("worker extra")).is_err());
        assert_eq!(
            parse(&argv("snapshot /tmp/x.snap")).unwrap().command,
            Command::Snapshot(PathBuf::from("/tmp/x.snap"))
        );
        assert!(parse(&argv("snapshot")).is_err(), "snapshot needs a path");
        assert!(parse(&argv("snapshot a b")).is_err(), "exactly one path");
        let Command::Faults(a) = parse(&argv("faults --threads 2")).unwrap().command else {
            panic!("not faults")
        };
        assert_eq!(a.threads, Some(2));
        assert!(parse(&argv("faults fig4")).is_err(), "faults takes no ids");
    }

    #[test]
    fn malformed_flags_are_config_errors() {
        for bad in [
            "run --threads",
            "run --threads 0",
            "run --threads x",
            "run --workers -1",
            "run --metrics-json",
            "run --snapshot",
            "run --bogus",
            "--frobnicate",
            "print-config extra",
        ] {
            assert!(parse(&argv(bad)).is_err(), "'{bad}' must not parse");
        }
    }
}
