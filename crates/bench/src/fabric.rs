//! Bench-side driver for the scale-out campaign fabric.
//!
//! `s2s_probe::fabric` owns the mechanism — shard math, the framed stdout
//! protocol, the coordinator's retry/timeout loop. This module owns the
//! policy: what a worker process actually measures for its shard, and how
//! the coordinator turns accepted shard payloads back into the same
//! [`LongTermData`] the in-process collector produces.
//!
//! Two worker modes ship (selected by `S2S_FABRIC_MODE`):
//!
//! * `longterm` — the paper's 3-hourly dual-protocol traceroute mesh. The
//!   payload is the shard's records in archived line form
//!   ([`s2s_probe::dataset`]), which since the lossless-float change
//!   round-trips bit-exactly — so the merged dataset is byte-identical to
//!   one process, pinned by `tests/tests/fabric_equivalence.rs`.
//! * `ping` — the §5 short-term mesh through a [`PairProfileSink`]; the
//!   payload is one serialized sink state per (pair, protocol).
//!
//! Every worker rebuilds the world from the same `S2S_*` scale knobs it
//! inherits from the coordinator, computes its own slice with
//! [`shard_range`], and checkpoints to `<S2S_FABRIC_CKPT_DIR>/shard-<i>`
//! so a retried attempt resumes instead of remeasuring. A shard that
//! exhausts the retry budget is *degraded, never dropped*: the merge
//! synthesizes a [`lost_record`] for every slot it owned (the dataset
//! stays dense) and books the slots under
//! [`CampaignReport::lost_slots`] — the accounting identities hold and
//! coverage floors surface the loss.

use crate::experiments::LongTermData;
use crate::scenario::Scenario;
use s2s_core::Analysis;
use s2s_probe::campaign::lost_record;
use s2s_probe::dataset::{traceroute_from_line, traceroute_to_line, write_traceroute_line};
use s2s_probe::fabric::{
    emit_shard, fnv64_bytes, shard_range, Frame, HeartbeatHandle, WorkerAssignment,
    ENV_CKPT_DIR, ENV_MODE, ENV_SHARDS, FNV64_OFFSET,
};
use s2s_probe::{
    Campaign, CampaignConfig, CampaignReport, Coordinator, FabricConfig,
    FabricFaultProfile, FabricOutcome, FaultProfile, PairProfileSink, ProcessLauncher,
    RetryPolicy, ShardPayload, StreamSink, TraceStore, WorkerFault, WorkerLauncher,
};
use s2s_types::{ClusterId, SimTime};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Clean run: every shard accepted. Alias of
/// [`ExitCode::Ok`](s2s_types::ExitCode::Ok) — the shared process exit
/// vocabulary lives in [`s2s_types::ExitCode`]; these constants remain
/// for callers that want the raw `i32`.
pub const EXIT_OK: i32 = s2s_types::ExitCode::Ok.code();
/// Configuration error: bad flags, bad worker assignment, unknown mode.
/// Alias of [`ExitCode::Config`](s2s_types::ExitCode::Config).
pub const EXIT_CONFIG: i32 = s2s_types::ExitCode::Config.code();
/// Campaign or worker failure: a checkpoint I/O error, a coordinator
/// launch failure, or a worker that could not finish its shard. Alias of
/// [`ExitCode::Campaign`](s2s_types::ExitCode::Campaign).
pub const EXIT_CAMPAIGN: i32 = s2s_types::ExitCode::Campaign.code();
/// Degraded result: the run completed but at least one shard was lost
/// after the retry budget, so coverage is below the offered schedule.
/// Alias of [`ExitCode::Degraded`](s2s_types::ExitCode::Degraded).
pub const EXIT_DEGRADED: i32 = s2s_types::ExitCode::Degraded.code();

/// The pair sample the long-term fabric campaign runs over — the same
/// list (same salt) [`LongTermData::collect`] uses, so the fabric and the
/// in-process collector measure the identical mesh.
pub fn longterm_pairs(scenario: &Scenario) -> Vec<(ClusterId, ClusterId)> {
    scenario.sample_pair_list(scenario.scale.pairs / 2, 0x10e6)
}

/// The pair sample and schedule of the fabric's short-term ping mesh:
/// `ping_pairs` unordered pairs, one week of 15-minute samples starting
/// mid-study (routing dynamics and congestion in full swing).
pub fn ping_mesh(scenario: &Scenario) -> (CampaignConfig, Vec<(ClusterId, ClusterId)>) {
    let cfg = CampaignConfig::ping_week(SimTime::from_days(scenario.scale.days / 2));
    let pairs = scenario.sample_pair_list(scenario.scale.ping_pairs / 2, 0x5EC5);
    (cfg, pairs)
}

/// FNV-64 digest over a store's records in archived line form — the
/// byte-identity fingerprint `reproduce --workers` prints and the CI
/// crash matrix compares against the one-process run. Line form (not
/// arena bytes) so the fingerprint pins the observable record sequence,
/// independent of intern-table layout. Streams each record's line through
/// one reused buffer (folding the same `\n`
/// [`s2s_probe::fabric::fnv64_lines`] folds), so a
/// digest never materializes the dataset as a `Vec<String>`.
pub fn store_digest(store: &TraceStore) -> u64 {
    store_digest_fold(FNV64_OFFSET, store)
}

/// The folding core of [`store_digest`]: continues a digest across
/// several stores. Because the digest streams record lines in order,
/// folding per-batch buffers from a `SnapshotReader` in stream order
/// yields exactly the digest of the materialized store — what lets
/// `reproduce` fingerprint a snapshot it never holds in memory.
pub fn store_digest_fold(h: u64, store: &TraceStore) -> u64 {
    let mut h = h;
    let mut buf = String::new();
    for v in store.iter() {
        buf.clear();
        write_traceroute_line(&mut buf, &v.to_record());
        h = fnv64_bytes(h, buf.as_bytes());
        h = fnv64_bytes(h, b"\n");
    }
    h
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Entry point for a fabric worker process (`reproduce worker`, or the
/// integration suite's `fabric-worker` binary). Reads the assignment and
/// mode from the environment, measures its shard, and emits the framed
/// result stream on stdout. Returns the process exit code.
pub fn worker_main() -> i32 {
    let assign = match WorkerAssignment::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fabric worker: {e}");
            return EXIT_CONFIG;
        }
    };
    let mode = std::env::var(ENV_MODE).unwrap_or_else(|_| "longterm".to_string());
    match mode.as_str() {
        "longterm" => run_worker(assign, LongTermMode),
        "ping" => run_worker(assign, PingMode),
        other => {
            eprintln!("fabric worker: unknown {ENV_MODE} '{other}' (longterm|ping)");
            EXIT_CONFIG
        }
    }
}

/// What one worker mode measures: its pair universe and the shard
/// campaign producing payload lines plus a report.
trait WorkerMode {
    /// The full (unsharded) pair list of this mode's campaign.
    fn pairs(&self, scenario: &Scenario) -> Vec<(ClusterId, ClusterId)>;
    /// Runs the shard campaign over `my_pairs` and returns the payload
    /// lines (archived records or serialized sink states) and the report.
    fn run(
        &self,
        scenario: &Scenario,
        my_pairs: &[(ClusterId, ClusterId)],
        campaign: Campaign,
    ) -> io::Result<(Vec<String>, CampaignReport)>;
}

struct LongTermMode;

impl WorkerMode for LongTermMode {
    fn pairs(&self, scenario: &Scenario) -> Vec<(ClusterId, ClusterId)> {
        longterm_pairs(scenario)
    }

    fn run(
        &self,
        scenario: &Scenario,
        my_pairs: &[(ClusterId, ClusterId)],
        campaign: Campaign,
    ) -> io::Result<(Vec<String>, CampaignReport)> {
        let (stores, report) = campaign.run_traceroute_with(
            &scenario.net,
            my_pairs,
            scenario.long_term_opts_of(),
            |_, _, _| TraceStore::new(),
            |st, rec| st.push(&rec),
        )?;
        // Archived line form, in accumulator order — exactly the record
        // sequence the one-process absorb loop sees for this slice.
        let lines = stores
            .iter()
            .flat_map(|st| st.to_records())
            .map(|rec| traceroute_to_line(&rec))
            .collect();
        Ok((lines, report))
    }
}

struct PingMode;

impl WorkerMode for PingMode {
    fn pairs(&self, scenario: &Scenario) -> Vec<(ClusterId, ClusterId)> {
        ping_mesh(scenario).1
    }

    fn run(
        &self,
        scenario: &Scenario,
        my_pairs: &[(ClusterId, ClusterId)],
        campaign: Campaign,
    ) -> io::Result<(Vec<String>, CampaignReport)> {
        let (cfg, _) = ping_mesh(scenario);
        let sink = PairProfileSink::for_config(&cfg);
        let (states, report) = campaign.sink(sink).run_ping(&scenario.net, my_pairs)?;
        let sink = PairProfileSink::for_config(&cfg);
        Ok((states.iter().map(|st| sink.save(st)).collect(), report))
    }
}

/// The campaign config a mode's shard runs under (must match what the
/// merge side assumes when synthesizing lost slots).
fn mode_config(mode_env: &str, scenario: &Scenario) -> CampaignConfig {
    match mode_env {
        "ping" => ping_mesh(scenario).0,
        _ => CampaignConfig::long_term(scenario.scale.days),
    }
}

fn run_worker<M: WorkerMode>(assign: WorkerAssignment, mode: M) -> i32 {
    // HELLO first — the coordinator's liveness clock starts here.
    println!(
        "{}",
        Frame::Hello { shard: assign.shard, attempt: assign.attempt }.to_line()
    );
    let _ = io::stdout().flush();

    let faults = FabricFaultProfile::from_env();
    // The fate *kind* is independent of the planned-unit count (only a
    // rate-drawn kill point uses it), so cheap fates resolve before the
    // world is built.
    match faults.decide(assign.shard, assign.attempt, 0) {
        WorkerFault::Stall => loop {
            // Injected hang: hello then silence, until the coordinator's
            // heartbeat timeout reaps us.
            std::thread::sleep(std::time::Duration::from_millis(50));
        },
        WorkerFault::ExitNonzero => return EXIT_CAMPAIGN,
        _ => {}
    }

    // Heartbeats cover the expensive part (world build + measurement).
    let hb = HeartbeatHandle::start(assign.shard, s2s_probe::env::fabric_hb_interval());

    let scenario = Scenario::from_env();
    let all_pairs = mode.pairs(&scenario);
    let range = shard_range(all_pairs.len(), assign.shards, assign.shard);
    let mut my_pairs = all_pairs[range].to_vec();

    let fate = faults.decide(assign.shard, assign.attempt, my_pairs.len());
    let kill_at = match fate {
        WorkerFault::Kill { after_units } => Some(after_units.min(my_pairs.len())),
        _ => None,
    };
    if let Some(k) = kill_at {
        // A kill landing after pair k: measure (and checkpoint) exactly
        // the first k pairs, then die without emitting results. The
        // retry resumes those pairs from the checkpoint bit-identically.
        my_pairs.truncate(k);
    }

    let registry = Arc::new(s2s_obs::Registry::new());
    let mode_env = std::env::var(ENV_MODE).unwrap_or_else(|_| "longterm".to_string());
    let mut campaign = Campaign::new(mode_config(&mode_env, &scenario))
        .faults(FaultProfile::from_env())
        .retry(RetryPolicy::default())
        .observe(Arc::clone(&registry));
    if let Ok(dir) = std::env::var(ENV_CKPT_DIR) {
        campaign = campaign
            .checkpoint(Path::new(&dir).join(format!("shard-{}.ckpt", assign.shard)));
    }

    let run = mode.run(&scenario, &my_pairs, campaign);
    // Heartbeats must stop before the result stream: an HB line landing
    // inside a DATA payload region would corrupt the payload count.
    hb.stop();
    let (lines, report) = match run {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fabric worker: shard {} failed: {e}", assign.shard);
            return EXIT_CAMPAIGN;
        }
    };
    if kill_at.is_some() {
        return EXIT_CAMPAIGN;
    }

    let snap = registry.snapshot();
    let payload = ShardPayload {
        lines,
        report,
        counters: snap.counters.into_iter().collect(),
    };
    let stdout = io::stdout();
    match emit_shard(
        &mut stdout.lock(),
        assign.shard,
        &payload,
        fate == WorkerFault::CorruptFrame,
    ) {
        Ok(()) => EXIT_OK,
        Err(e) => {
            eprintln!("fabric worker: emit failed: {e}");
            EXIT_CAMPAIGN
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// A fabric collection run's outputs: the merged data set, the fabric's
/// per-shard results and stats, and the dataset byte-identity digest.
pub struct FabricCollection {
    /// The merged long-term data set — what [`LongTermData::collect`]
    /// would have produced in one process (plus synthesized lost rows for
    /// degraded shards).
    pub data: LongTermData,
    /// Per-shard results and fabric accounting.
    pub outcome: FabricOutcome,
    /// [`store_digest`] of the merged store.
    pub digest: u64,
    /// The merged columnar store itself, so callers can persist it
    /// ([`s2s_probe::snapshot::write_file`]) without a re-import.
    pub store: TraceStore,
}

/// A [`ProcessLauncher`] that spawns `program args…` as fabric workers in
/// `mode`, sharing `ckpt_dir` for worker-local checkpoints. Scale and
/// fault knobs travel by env inheritance; `extra_envs` lets tests pin a
/// fault plan per launcher without touching the parent process env.
pub fn worker_launcher(
    program: PathBuf,
    args: Vec<String>,
    mode: &str,
    shards: usize,
    ckpt_dir: &Path,
    extra_envs: Vec<(String, String)>,
) -> ProcessLauncher {
    let mut envs = vec![
        (ENV_SHARDS.to_string(), shards.to_string()),
        (ENV_MODE.to_string(), mode.to_string()),
        (ENV_CKPT_DIR.to_string(), ckpt_dir.display().to_string()),
    ];
    envs.extend(extra_envs);
    ProcessLauncher { program, args, envs }
}

/// Collects the long-term data set through the fabric: one shard per
/// worker slot, merged in shard order. Lost shards synthesize a
/// [`lost_record`] per slot — (pair, protocol)-major, time-minor, the
/// accumulator order of the one-process campaign — so the dataset stays
/// dense and the loss is pure accounting ([`CampaignReport::lost_slots`]
/// plus the coverage floor).
///
/// Each shard's payload builds a per-shard [`TraceStore`] which the merge
/// [`TraceStore::absorb`]s in shard order — identical to pushing every
/// record sequentially (the absorb-order identity pinned in the store's
/// proptests). When `S2S_SNAPSHOT_DIR` is set, every shard store is also
/// written as `shard-<i>.snap` there and **the snapshot file, streamed
/// back through [`s2s_probe::snapshot::absorb_files`]**, is what gets
/// absorbed — so a fabric run exercises, and its digest certifies, the
/// out-of-core persistence round trip without ever rematerializing a
/// shard.
pub fn collect_longterm_fabric<L: WorkerLauncher>(
    scenario: &Scenario,
    cfg: FabricConfig,
    launcher: L,
) -> io::Result<FabricCollection> {
    let n_shards = cfg.workers;
    let pairs = longterm_pairs(scenario);
    let camp_cfg = CampaignConfig::long_term(scenario.scale.days);
    let mut outcome = Coordinator::new(cfg, launcher).run(n_shards)?;

    let snap_dir = s2s_probe::env::snapshot_dir();
    if let Some(dir) = &snap_dir {
        std::fs::create_dir_all(dir)?;
    }

    let t_merge = Instant::now();
    let times = camp_cfg.times();
    let mut store = TraceStore::new();
    let mut report = CampaignReport::default();
    for s in &outcome.shards {
        let mut shard_store = TraceStore::new();
        if s.lost {
            let range = shard_range(pairs.len(), n_shards, s.shard);
            let slots = range.len() * camp_cfg.protocols.len() * times.len();
            for &(src, dst) in &pairs[range] {
                for &proto in &camp_cfg.protocols {
                    for &t in &times {
                        shard_store.push(&lost_record(src, dst, proto, t));
                    }
                }
            }
            report.merge(&CampaignReport {
                offered: slots,
                lost_slots: slots,
                ..CampaignReport::default()
            });
        } else {
            for (i, line) in s.lines.iter().enumerate() {
                let rec = traceroute_from_line(line, i + 1).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shard {} payload: {e}", s.shard),
                    )
                })?;
                shard_store.push(&rec);
            }
            if let Some(r) = &s.report {
                report.merge(r);
            }
        }
        match &snap_dir {
            Some(dir) => {
                let path = dir.join(format!("shard-{}.snap", s.shard));
                s2s_probe::snapshot::write_file(&path, &shard_store, &[])?;
                // Stream the shard back instead of reopening it whole:
                // byte-identical to full-reopen + absorb, resident bytes
                // bounded by one shard's arena plus one batch.
                let options = s2s_probe::Snapshot::options().stream(true);
                s2s_probe::snapshot::absorb_files(&mut store, &[&path], &options)?;
            }
            None => store.absorb(&shard_store),
        }
    }
    // The coordinator timed its (trivial) line concatenation; the real
    // merge cost is re-interning the records, so overwrite with that.
    outcome.stats.merge_ms = t_merge.elapsed().as_secs_f64() * 1e3;

    if let Some(reg) = s2s_obs::installed() {
        outcome.stats.publish(&reg, &outcome.shards);
    }
    let digest = store_digest(&store);
    let timelines = Analysis::new(&store).timelines(&scenario.ip2asn);
    let data =
        LongTermData { pairs, timelines, report, arena: Some(store.stats()) };
    Ok(FabricCollection { data, outcome, digest, store })
}

/// One-process long-term collection plus the dataset digest — the
/// baseline the CI crash matrix compares `--workers N` digests against.
/// Identical to [`LongTermData::collect_with`] except the store's digest
/// is fingerprinted before analysis, and the store itself is returned so
/// callers can persist it as a snapshot without a re-import.
pub fn collect_longterm_digest(
    scenario: &Scenario,
    profile: &FaultProfile,
) -> (LongTermData, u64, TraceStore) {
    let pairs = longterm_pairs(scenario);
    let (store, report) =
        scenario.long_term_store_faulty(&pairs, profile, &RetryPolicy::default());
    let digest = store_digest(&store);
    let timelines = Analysis::new(&store).timelines(&scenario.ip2asn);
    let data = LongTermData { pairs, timelines, report, arena: Some(store.stats()) };
    (data, digest, store)
}

/// Collects the short-term ping mesh through the fabric: the merged
/// output is the serialized [`PairProfileSink`] state lines in shard
/// order — byte-identical to saving the one-process run's states. Lost
/// shards contribute no states, only accounting.
pub fn collect_ping_fabric<L: WorkerLauncher>(
    scenario: &Scenario,
    cfg: FabricConfig,
    launcher: L,
) -> io::Result<(Vec<String>, CampaignReport, FabricOutcome)> {
    let n_shards = cfg.workers;
    let (camp_cfg, pairs) = ping_mesh(scenario);
    let outcome = Coordinator::new(cfg, launcher).run(n_shards)?;
    let mut report = CampaignReport::default();
    for s in &outcome.shards {
        if s.lost {
            let range = shard_range(pairs.len(), n_shards, s.shard);
            let slots = range.len() * camp_cfg.protocols.len() * camp_cfg.n_samples();
            report.merge(&CampaignReport {
                offered: slots,
                lost_slots: slots,
                ..CampaignReport::default()
            });
        } else if let Some(r) = &s.report {
            report.merge(r);
        }
    }
    if let Some(reg) = s2s_obs::installed() {
        outcome.stats.publish(&reg, &outcome.shards);
    }
    Ok((outcome.merged_lines(), report, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    fn micro_scenario() -> Scenario {
        Scenario::build(Scale {
            seed: 3,
            clusters: 12,
            days: 6,
            pairs: 8,
            ping_pairs: 12,
            cong_pairs: 4,
        })
    }

    /// An in-process launcher that runs the long-term shard campaign on a
    /// thread and streams real frames — the worker path without the
    /// subprocess (subprocess equivalence lives in the integration suite).
    struct InProcess {
        scenario: Arc<Scenario>,
        shards: usize,
        lose: Vec<usize>,
    }

    impl WorkerLauncher for InProcess {
        fn launch(
            &self,
            shard: usize,
            attempt: u32,
        ) -> io::Result<s2s_probe::fabric::LaunchedWorker> {
            use s2s_probe::fabric::WorkerEvent;
            let (tx, rx) = std::sync::mpsc::channel();
            let scenario = Arc::clone(&self.scenario);
            let shards = self.shards;
            let lose = self.lose.contains(&shard);
            std::thread::spawn(move || {
                let hello = Frame::Hello { shard, attempt }.to_line();
                let _ = tx.send(WorkerEvent::Line(hello));
                if lose {
                    let _ = tx.send(WorkerEvent::Exit(Some(EXIT_CAMPAIGN)));
                    return;
                }
                let all = longterm_pairs(&scenario);
                let mine = &all[shard_range(all.len(), shards, shard)];
                let (lines, report) = LongTermMode
                    .run(
                        &scenario,
                        mine,
                        Campaign::new(CampaignConfig::long_term(scenario.scale.days)),
                    )
                    .expect("in-memory campaign cannot fail");
                let mut buf = Vec::new();
                let payload =
                    ShardPayload { lines, report, counters: Vec::new() };
                emit_shard(&mut buf, shard, &payload, false).unwrap();
                for l in String::from_utf8(buf).unwrap().lines() {
                    let _ = tx.send(WorkerEvent::Line(l.to_string()));
                }
                let _ = tx.send(WorkerEvent::Exit(Some(0)));
            });
            Ok(s2s_probe::fabric::LaunchedWorker {
                events: rx,
                kill: Box::new(|| {}),
            })
        }
    }

    fn fabric_cfg(workers: usize) -> FabricConfig {
        FabricConfig {
            workers,
            max_attempts: 2,
            heartbeat_timeout: std::time::Duration::from_secs(30),
            ..FabricConfig::default()
        }
    }

    #[test]
    fn store_digest_streams_identically_to_line_materialization() {
        // Regression pin: the digest used to materialize every record as
        // a String and hash the Vec; the streaming path must produce the
        // exact same value.
        let scenario = micro_scenario();
        let (store, _) = scenario.long_term_store_faulty(
            &longterm_pairs(&scenario),
            &FaultProfile::default(),
            &RetryPolicy::default(),
        );
        assert!(!store.is_empty());
        let lines: Vec<String> =
            store.to_records().iter().map(traceroute_to_line).collect();
        assert_eq!(store_digest(&store), s2s_probe::fabric::fnv64_lines(&lines));
        assert_eq!(store_digest(&TraceStore::new()), FNV64_OFFSET);
    }

    #[test]
    fn snapshot_write_reopen_absorb_matches_direct_merge() {
        // The mechanism behind S2S_SNAPSHOT_DIR: per-shard stores written
        // as snapshots, reopened, and absorbed must merge byte-identically
        // to absorbing the in-memory shard stores.
        let scenario = micro_scenario();
        let (full, _) = scenario.long_term_store_faulty(
            &longterm_pairs(&scenario),
            &FaultProfile::default(),
            &RetryPolicy::default(),
        );
        let records = full.to_records();
        let cut = records.len() / 2;
        let shards =
            [TraceStore::from_records(&records[..cut]), TraceStore::from_records(&records[cut..])];
        let dir = std::path::Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/tmp/fabric-snap-merge"
        ));
        std::fs::create_dir_all(dir).expect("create target/tmp");
        let mut direct = TraceStore::new();
        let mut via_snapshot = TraceStore::new();
        for (i, shard) in shards.iter().enumerate() {
            direct.absorb(shard);
            let path = dir.join(format!("shard-{i}.snap"));
            s2s_probe::snapshot::write_file(&path, shard, &[]).expect("write snapshot");
            let reopened = s2s_probe::snapshot::open_file(&path).expect("reopen");
            via_snapshot.absorb(&reopened.store);
        }
        assert_eq!(store_digest(&via_snapshot), store_digest(&direct));
        assert_eq!(via_snapshot.stats(), direct.stats());
        // And the sequential-push identity the merge relies on.
        assert_eq!(store_digest(&direct), store_digest(&full));
        // The streaming absorb (what the merge actually runs now) must
        // match the full-reopen reference at any batch budget, and the
        // per-batch digest fold must equal the whole-store digest.
        let paths: Vec<_> = (0..shards.len())
            .map(|i| dir.join(format!("shard-{i}.snap")))
            .collect();
        for budget in [1usize, 7, 1 << 20] {
            let options =
                s2s_probe::Snapshot::options().stream(true).block_budget(budget);
            let mut streamed = TraceStore::new();
            let (report, _sinks) =
                s2s_probe::snapshot::absorb_files(&mut streamed, &paths, &options)
                    .expect("streaming absorb");
            assert!(report.clean(), "budget {budget}");
            assert_eq!(store_digest(&streamed), store_digest(&direct), "budget {budget}");
            assert_eq!(streamed.stats(), direct.stats(), "budget {budget}");
            let mut folded = FNV64_OFFSET;
            for path in &paths {
                let mut reader = options.open(path).expect("open shard");
                while let Some(batch) = reader.next_batch().expect("batch") {
                    folded = store_digest_fold(folded, batch);
                }
            }
            assert_eq!(folded, store_digest(&direct), "budget {budget} digest fold");
        }
    }

    #[test]
    fn fabric_collection_matches_in_process_collection() {
        let scenario = Arc::new(micro_scenario());
        let baseline = LongTermData::collect(&scenario);
        let (base_store, _) = scenario.long_term_store_faulty(
            &longterm_pairs(&scenario),
            &FaultProfile::default(),
            &RetryPolicy::default(),
        );
        for workers in [1usize, 3] {
            let launcher = InProcess {
                scenario: Arc::clone(&scenario),
                shards: workers,
                lose: Vec::new(),
            };
            let got =
                collect_longterm_fabric(&scenario, fabric_cfg(workers), launcher)
                    .unwrap();
            assert_eq!(
                got.digest,
                store_digest(&base_store),
                "{workers}-worker dataset must be byte-identical to one process"
            );
            assert_eq!(got.data.timelines, baseline.timelines);
            assert_eq!(got.data.report.delivered, baseline.report.delivered);
            assert_eq!(got.outcome.stats.lost, 0);
        }
    }

    #[test]
    fn lost_shard_degrades_to_dense_lost_rows() {
        let scenario = Arc::new(micro_scenario());
        let workers = 3;
        let launcher = InProcess {
            scenario: Arc::clone(&scenario),
            shards: workers,
            lose: vec![1],
        };
        let got =
            collect_longterm_fabric(&scenario, fabric_cfg(workers), launcher).unwrap();
        assert_eq!(got.outcome.stats.lost, 1);
        let baseline = LongTermData::collect(&scenario);
        // The dataset stays dense: same timeline count, same slot count.
        assert_eq!(got.data.timelines.len(), baseline.timelines.len());
        let r = &got.data.report;
        assert!(r.lost_slots > 0);
        assert_eq!(
            r.offered,
            r.delivered + r.truncated + r.gave_up + r.agent_down_slots + r.lost_slots,
            "accounting identity must hold in degraded mode"
        );
        // Coverage is strictly below the clean run's.
        assert!(got.data.coverage().fraction() < baseline.coverage().fraction());
    }
}
