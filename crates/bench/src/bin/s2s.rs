//! `s2s` — command-line front end for the simulator and analysis pipeline.
//!
//! ```text
//! s2s topo                          # print the world's structure
//! s2s trace <src> <dst> [--v6]      # one traceroute, scamper-style output
//! s2s ping  <src> <dst> [--v6]      # one ping
//! s2s campaign <out.s2s> [--pairs N] [--days N]
//!                                   # run a 3-hourly campaign, archive it
//! s2s analyze <in.s2s>              # routing-change analysis of an archive
//! ```
//!
//! The `campaign`/`analyze` pair demonstrates the pipeline's data-source
//! independence: `analyze` never touches the simulator — it would work on
//! any archive in the same format.

use s2s_bench::{Scale, Scenario};
use s2s_core::bestpath::best_path_analysis;
use s2s_core::changes::{detect_changes, path_stats};
use s2s_core::timeline::TimelineBuilder;
use s2s_probe::dataset::{read_traceroutes_lossy, write_traceroutes};
use s2s_probe::{trace, TraceOptions};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
use std::io::BufReader;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: s2s <command>\n\
         \n\
         commands:\n\
           topo                                  print the simulated world\n\
           trace <src> <dst> [--v6] [--classic]  run one traceroute\n\
           ping  <src> <dst> [--v6]              run one ping\n\
           campaign <out> [--pairs N] [--days N] run + archive a campaign\n\
           analyze  <in>                         analyze an archive\n\
         \n\
         <src>/<dst> are cluster indices (see `s2s topo`).\n\
         The world obeys S2S_SEED / S2S_CLUSTERS (small default here)."
    );
    ExitCode::FAILURE
}

/// A small world unless the caller asks for more via the env knobs.
fn scenario() -> Scenario {
    let mut scale = Scale::from_env();
    if s2s_types::env::var_raw("S2S_CLUSTERS").is_none() {
        scale.clusters = 24;
    }
    Scenario::build(scale)
}

fn proto_of(args: &[String]) -> Protocol {
    if args.iter().any(|a| a == "--v6") {
        Protocol::V6
    } else {
        Protocol::V4
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u32> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn cmd_topo() -> ExitCode {
    let s = scenario();
    let topo = &s.topo;
    println!(
        "world: {} ASes, {} routers, {} links, {} clusters (seed {})",
        topo.ases.len(),
        topo.routers.len(),
        topo.links.len(),
        topo.clusters.len(),
        topo.params.seed
    );
    println!("clusters:");
    for i in 0..topo.clusters.len() {
        let c = ClusterId::from(i);
        let city = topo.cluster_city(c);
        println!(
            "  {i:>3}  {:<18} {}  {}",
            city.name,
            city.country,
            topo.asn(topo.clusters[i].host_as)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else { return usage() };
    let (Ok(a), Ok(b)) = (a.parse::<u32>(), b.parse::<u32>()) else { return usage() };
    let s = scenario();
    if a as usize >= s.topo.clusters.len() || b as usize >= s.topo.clusters.len() {
        eprintln!("cluster index out of range (see `s2s topo`)");
        return ExitCode::FAILURE;
    }
    let proto = proto_of(args);
    let mode = if args.iter().any(|x| x == "--classic") {
        s2s_probe::TracerouteMode::Classic
    } else {
        s2s_probe::TracerouteMode::Paris
    };
    let rec = trace(
        &s.net,
        ClusterId::new(a),
        ClusterId::new(b),
        proto,
        SimTime::from_days(3),
        TraceOptions { mode, ..TraceOptions::default() },
    );
    for (i, h) in rec.hops.iter().enumerate() {
        match (h.addr, h.rtt_ms) {
            (Some(addr), Some(rtt)) => println!("{:>3}  {addr:<24} {rtt:>9.3} ms", i + 1),
            _ => println!("{:>3}  *", i + 1),
        }
    }
    match (rec.reached, rec.e2e_rtt_ms, rec.dst_addr) {
        (true, Some(rtt), Some(addr)) => {
            println!("{:>3}  {addr:<24} {rtt:>9.3} ms  <- destination", rec.hops.len() + 1);
        }
        _ => println!("destination unreachable"),
    }
    let ann = s2s_core::annotate::annotate(&rec, &s.ip2asn);
    println!("AS path: {}", ann.as_path);
    ExitCode::SUCCESS
}

fn cmd_ping(args: &[String]) -> ExitCode {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else { return usage() };
    let (Ok(a), Ok(b)) = (a.parse::<u32>(), b.parse::<u32>()) else { return usage() };
    let s = scenario();
    let proto = proto_of(args);
    for seq in 0..4u64 {
        match s.net.ping(ClusterId::new(a), ClusterId::new(b), proto, SimTime::from_days(3), seq)
        {
            Some(rtt) => println!("seq {seq}: {rtt:.2} ms"),
            None => println!("seq {seq}: timeout"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_campaign(args: &[String]) -> ExitCode {
    let Some(out) = args.first() else { return usage() };
    let n_pairs = flag_value(args, "--pairs").unwrap_or(20) as usize;
    let days = flag_value(args, "--days").unwrap_or(10);
    let s = scenario();
    let pairs = s.sample_pair_list(n_pairs, 0xC11);
    eprintln!(
        "campaign: {} directed pairs, {days} days at 3-hour cadence, IPv4",
        pairs.len()
    );
    let mut records = Vec::new();
    for &(src, dst) in &pairs {
        let mut t = SimTime::T0;
        while t < SimTime::from_days(days) {
            records.push(trace(&s.net, src, dst, Protocol::V4, t, TraceOptions::default()));
            t += SimDuration::from_hours(3);
        }
    }
    let mut f = match std::fs::File::create(out) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_traceroutes(&mut f, &records) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} records to {out}", records.len());
    ExitCode::SUCCESS
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(input) = args.first() else { return usage() };
    let f = match std::fs::File::open(input) {
        Ok(f) => BufReader::new(f),
        Err(e) => {
            eprintln!("cannot open {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Archives can be damaged (partial writes, fault-injected corruption):
    // skip what doesn't parse, report exactly how much, analyze the rest.
    let (records, import) = match read_traceroutes_lossy(f) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("read failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if import.skipped > 0 {
        eprintln!(
            "warning: skipped {} unparseable line(s); record coverage {}",
            import.skipped,
            import.coverage()
        );
        for e in &import.first_errors {
            eprintln!("  {e}");
        }
    }
    // The analysis still needs an IP→ASN view; the archive came from the
    // same world, so rebuild the map from the seeded topology (a real
    // deployment would load a BGP snapshot here).
    let s = scenario();
    let mut builders: std::collections::HashMap<_, TimelineBuilder> = Default::default();
    for r in &records {
        builders
            .entry((r.src, r.dst, r.proto))
            .or_insert_with(|| TimelineBuilder::new(r.src, r.dst, r.proto, &s.ip2asn))
            .push(r.clone());
    }
    println!(
        "{} records, {} timelines",
        records.len(),
        builders.len()
    );
    let mut keys: Vec<_> = builders.keys().copied().collect();
    keys.sort();
    let mut timelines: Vec<_> = builders.into_iter().collect();
    timelines.sort_by_key(|(k, _)| *k);
    for (k, b) in timelines {
        let tl = b.finish();
        let ch = detect_changes(&tl);
        let stats = path_stats(&tl, SimDuration::from_hours(3));
        let dominant = stats
            .popular
            .map(|p| stats.prevalence[p] * 100.0)
            .unwrap_or(0.0);
        print!(
            "{} -> {} {}: {} samples, {} paths, {} changes, dominant {dominant:.0}%",
            k.0,
            k.1,
            k.2,
            tl.usable_samples(),
            tl.unique_paths(),
            ch.changes
        );
        if let Some(a) = best_path_analysis(&tl, SimDuration::from_hours(3)) {
            let worst = a
                .deltas
                .iter()
                .map(|d| d.delta_p10_ms)
                .fold(0.0, f64::max);
            print!(", worst detour +{worst:.1} ms");
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("topo") => cmd_topo(),
        Some("trace") => cmd_trace(&args[1..]),
        Some("ping") => cmd_ping(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        _ => usage(),
    }
}
