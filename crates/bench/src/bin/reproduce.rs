//! Regenerates every table and figure of the paper on the simulated world,
//! or runs the whole platform as an always-on measurement service.
//!
//! ```text
//! cargo run -p s2s-bench --release --bin reproduce -- run            # everything
//! cargo run -p s2s-bench --release --bin reproduce -- run fig4 fig6 # a subset
//! cargo run -p s2s-bench --release --bin reproduce -- serve         # the daemon
//! ```
//!
//! Subcommands (`s2s_bench::cli` is the typed parser; the pre-subcommand
//! spellings still work with a stderr deprecation note):
//!
//! * `run [ids…] [flags]` — batch reproduction. Experiment ids: table1,
//!   fig1, fig2a, fig2b, fig3a, fig3b, fig4, fig5, fig6, fig7, sec51,
//!   sec53, fig8, fig9, fig10a, fig10b, plus the extensions (loss,
//!   shared, coloc, abw) and the fault sweep (faults). Scale comes from
//!   `S2S_*` environment variables; the measurement plane can be degraded
//!   via `S2S_FAULT_*` knobs (DESIGN.md §8 scale knobs, §9 fault model).
//! * `serve [--epochs n] [--snapshot p] …` — the always-on service
//!   (DESIGN.md §14): epochs advance continuously, checkpoints flush
//!   every `S2S_SERVICE_SNAP_EVERY` epochs, and stdin lines are answered
//!   as `ok {json}` / `err reason` query replies. A graceful shutdown
//!   (EOF or `quit`) flushes a final snapshot and prints the same
//!   `long-term dataset digest` line a batch run prints.
//! * `worker` — the fabric's worker entry point; the coordinator spawns
//!   it, operators never do.
//! * `snapshot <path>` — inspect a snapshot file or shard directory:
//!   trace/sink counts, damage report, dataset digest.
//! * `faults [flags]` — the fault-robustness sweep (`run faults`).
//! * `print-config` — dump every `S2S_*` knob (resolved value, default,
//!   whether the operator set it) and exit.
//!
//! Flags (`run`/`faults`; `serve` shares `--threads`, `--snapshot`,
//! `--metrics-json` and adds `--epochs`):
//! * `--metrics-json <path>` — after the run, write the observability
//!   registry's snapshot (schema-stable JSON) to `<path>`. A metrics
//!   summary table prints at the end of every run either way.
//! * `--threads <n>` — worker threads for campaigns and the columnar
//!   analysis shards; overrides `S2S_THREADS` (and is what
//!   `print-config` then reports). Results are byte-identical across
//!   thread counts.
//! * `--workers <n>` — collect the long-term campaign through the
//!   crash-tolerant scale-out fabric with `n` worker subprocesses
//!   (default `S2S_FABRIC_WORKERS`, 1 = in-process, no fabric). The
//!   merged dataset is byte-identical to the in-process run — both paths
//!   print a `dataset digest` line to prove it — even under the seeded
//!   `S2S_FABRIC_FAULT_*` crash schedules.
//! * `--snapshot <path>` — binary columnar persistence (default
//!   `S2S_SNAPSHOT_PATH`). If `<path>` exists, the long-term dataset is
//!   *streamed* back out-of-core — arenas load once, trace blocks pass
//!   through a bounded reuse buffer (`S2S_SNAPSHOT_BUDGET` traces at a
//!   time) — no campaign, no line re-import, and the resident set never
//!   holds the full trace set. `<path>` may also be a *directory* of
//!   per-shard `*.snap` files (e.g. an `S2S_SNAPSHOT_DIR` from a fabric
//!   run), absorbed shard-by-shard in numeric order. Torn or corrupt
//!   segments degrade to counted skips; a zero-length or magic-only file
//!   is reported as a distinct *empty snapshot* condition. Otherwise the
//!   campaign runs and writes its store there. The `dataset digest` line
//!   is identical either way.
//!
//! Exit codes are the shared [`s2s_types::ExitCode`] vocabulary (also the
//! fabric worker's): 0 clean, 2 configuration error, 3 campaign/worker
//! failure, 4 degraded result, 5 service runtime failure, 6 query budget
//! exhausted. The README's "Exit codes" section holds the full table.

use s2s_bench::experiments::{
    congestion, dualstack, example, extensions, faultsweep, longterm, ownercheck,
    shortterm,
};
use s2s_bench::{cli, fabric, service};
use s2s_bench::{Scale, Scenario};
use s2s_probe::env::ResolvedKnob;
use s2s_probe::FaultProfile;
use s2s_types::{ExitCode, Protocol, SimTime};
use std::sync::Arc;
use std::time::Instant;

const ALL: &[&str] = &[
    "table1", "fig1", "fig2a", "fig2b", "fig3a", "fig3b", "fig4", "fig5", "fig6",
    "fig7", "sec51", "sec53", "fig8", "fig9", "fig10a", "fig10b",
    // Extensions: the paper's §8 future-work items + the §2.2 colocated
    // campaign (possible here because the simulator has ground truth).
    "loss", "shared", "coloc", "abw",
    // Robustness: figure stability under an injected faulty plane.
    "faults",
];

/// The experiment-scale knobs, resolved the same way `Scale::from_env`
/// resolves them — they live here (not `s2s_probe::env`) because their
/// defaults are experiment policy, not measurement-plane policy.
fn scale_knobs(scale: &Scale) -> Vec<ResolvedKnob> {
    let set = |name: &str| s2s_types::env::var_raw(name).is_some();
    let knob = |name: &'static str, value: String, default: &str, doc: &'static str| {
        ResolvedKnob { name, value, default: default.to_string(), set: set(name), doc }
    };
    vec![
        knob("S2S_SEED", scale.seed.to_string(), "20151201", "master world seed"),
        knob("S2S_CLUSTERS", scale.clusters.to_string(), "120", "CDN clusters deployed"),
        knob("S2S_DAYS", scale.days.to_string(), "485", "days of long-term campaign"),
        knob("S2S_PAIRS", scale.pairs.to_string(), "600", "long-term directed pair samples"),
        knob(
            "S2S_PING_PAIRS",
            scale.ping_pairs.to_string(),
            "4000",
            "pairs in the short-term ping campaign",
        ),
        knob(
            "S2S_CONG_PAIRS",
            scale.cong_pairs.to_string(),
            "400",
            "congested-pair subset traced every 30 minutes",
        ),
        knob(
            "S2S_BENCH_QUICK",
            s2s_types::env::var_flag("S2S_BENCH_QUICK").to_string(),
            "false",
            "shrink Criterion bench worlds for CI smoke runs",
        ),
    ]
}

fn print_config() {
    println!("s2s reproduce — resolved S2S_* knobs (* = set by the operator)\n");
    println!("measurement plane:");
    print!("{}", s2s_probe::env::format_knob_table(&s2s_probe::env::resolved_knobs()));
    println!("\nexperiment scale:");
    print!("{}", s2s_probe::env::format_knob_table(&scale_knobs(&Scale::from_env())));
    println!("\nalways-on service:");
    print!("{}", s2s_probe::env::format_knob_table(&service::service_knobs()));
}

/// Persists a freshly collected store to `path` when `--snapshot` (or
/// `S2S_SNAPSHOT_PATH`) asked for one. Prints size and digest so the next
/// run's reopen can be byte-compared against this line.
fn write_snapshot_if_asked(
    path: Option<&std::path::Path>,
    store: &s2s_probe::TraceStore,
    digest: u64,
) {
    let Some(path) = path else { return };
    match s2s_probe::snapshot::write_file(path, store, &[]) {
        Ok(bytes) => println!(
            "snapshot: wrote {} — {} traces, {} bytes, digest {digest:016x}",
            path.display(),
            store.len(),
            bytes
        ),
        Err(e) => {
            eprintln!("cannot write snapshot {}: {e}", path.display());
            ExitCode::Campaign.exit();
        }
    }
}

/// A snapshot that cannot be opened at all (I/O error, bad magic,
/// unsupported version) is a campaign failure, not a degraded run.
fn snapshot_open_fail(path: &std::path::Path, e: std::io::Error) -> ! {
    eprintln!("cannot open snapshot {}: {e}", path.display());
    ExitCode::Campaign.exit()
}

/// Prints the end-of-run metrics table and honors `--metrics-json`.
fn metrics_tail(registry: &Arc<s2s_obs::Registry>, metrics_json: Option<&str>) {
    let snapshot = registry.snapshot();
    s2s_obs::uninstall();
    println!("\nOBSERVABILITY — end-of-run metrics");
    print!("{}", snapshot.summary_table());
    if let Some(path) = metrics_json {
        match std::fs::write(path, snapshot.to_json()) {
            Ok(()) => println!("metrics written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                ExitCode::Campaign.exit();
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::Config.exit();
        }
    };
    // Fabric worker mode: measure the assigned shard, speak the framed
    // protocol on stdout, exit. Dispatched before anything can print.
    if parsed.command == cli::Command::Worker {
        std::process::exit(fabric::worker_main());
    }
    for note in &parsed.deprecations {
        eprintln!("{note}");
    }
    // Typo guard: one stderr line for any S2S_* variable no layer
    // recognizes, before it can silently configure nothing.
    s2s_probe::env::warn_unknown_knobs();
    match parsed.command {
        cli::Command::Worker => unreachable!("dispatched above"),
        cli::Command::PrintConfig => print_config(),
        cli::Command::Snapshot(path) => snapshot_main(&path),
        cli::Command::Serve(a) => serve_main(a),
        cli::Command::Run(a) => run_main(a),
        cli::Command::Faults(mut a) => {
            a.ids = vec!["faults".to_string()];
            run_main(a)
        }
    }
}

/// The `serve` subcommand: build the world, then hand the process to the
/// service loop — stdin is the query channel, stdout the answer channel.
fn serve_main(a: cli::ServeArgs) -> ! {
    if let Some(n) = a.threads {
        std::env::set_var("S2S_THREADS", n.to_string());
    }
    let mut cfg = service::ServiceConfig::from_env();
    if let Some(p) = a.snapshot {
        cfg.snapshot_path = Some(p);
    }
    let scale = Scale::from_env();
    println!(
        "s2s serve — scale: {} clusters, {} days, {} long-term directed pairs, \
         seed {}",
        scale.clusters, scale.days, scale.pairs, scale.seed
    );
    let t0 = Instant::now();
    let scenario = Scenario::build(scale);
    println!("world built in {:?}\n", t0.elapsed());
    let registry = Arc::new(s2s_obs::Registry::new());
    scenario.net.observe(&registry);
    s2s_obs::install(Arc::clone(&registry));
    let stdin = std::io::BufReader::new(std::io::stdin());
    let mut stdout = std::io::stdout();
    let outcome = service::serve(&scenario, cfg, a.epochs, stdin, &mut stdout);
    metrics_tail(&registry, a.metrics_json.as_deref());
    match outcome {
        Ok(o) => o.exit.exit(),
        Err(e) => {
            eprintln!("service failed: {e}");
            ExitCode::Service.exit()
        }
    }
}

/// The `snapshot` subcommand: stream a snapshot file or shard directory,
/// print its damage report and dataset digest, exit clean or degraded.
fn snapshot_main(path: &std::path::Path) -> ! {
    let options = s2s_probe::Snapshot::options().lossy(true).stream(true);
    let shard_paths: Vec<std::path::PathBuf> = if path.is_dir() {
        let dir = options.open_dir(path).unwrap_or_else(|e| snapshot_open_fail(path, e));
        println!("snapshot: {} shard(s) in {}", dir.paths().len(), path.display());
        dir.paths().to_vec()
    } else {
        vec![path.to_path_buf()]
    };
    let mut rep = s2s_probe::SnapshotReport::default();
    let mut digest = s2s_probe::fabric::FNV64_OFFSET;
    for p in &shard_paths {
        let mut reader = options.open(p).unwrap_or_else(|e| snapshot_open_fail(p, e));
        loop {
            match reader.next_batch() {
                Ok(Some(batch)) => digest = fabric::store_digest_fold(digest, batch),
                Ok(None) => break,
                Err(e) => snapshot_open_fail(p, e),
            }
        }
        rep.merge(reader.report());
    }
    println!(
        "snapshot: {} — {} traces ({} skipped), {} sink state(s){}",
        path.display(),
        rep.traces,
        rep.skipped_traces,
        rep.sinks,
        if rep.empty {
            ", EMPTY"
        } else if rep.torn {
            ", TORN"
        } else {
            ""
        }
    );
    println!("long-term dataset digest: {digest:016x}");
    if !rep.clean() {
        for e in &rep.first_errors {
            eprintln!("snapshot damage: {e}");
        }
        ExitCode::Degraded.exit();
    }
    ExitCode::Ok.exit()
}

fn run_main(run: cli::RunArgs) {
    if let Some(n) = run.threads {
        // Must take effect before any knob is resolved, so this happens
        // before config printing or world building.
        std::env::set_var("S2S_THREADS", n.to_string());
    }
    if run.print_config {
        print_config();
        return;
    }
    let workers = run.workers.unwrap_or_else(s2s_probe::env::fabric_workers);
    let snapshot_path = run.snapshot.or_else(s2s_probe::env::snapshot_path);
    let metrics_json = run.metrics_json;
    let wanted: Vec<&str> =
        if run.ids.is_empty() { ALL.to_vec() } else { run.ids.iter().map(String::as_str).collect() };
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("unknown experiment id '{w}' (known: {ALL:?})");
            ExitCode::Config.exit();
        }
    }
    let scale = Scale::from_env();
    println!(
        "s2s reproduce — scale: {} clusters, {} days, {} long-term directed pairs, \
         {} ping pairs, {} congested pairs, seed {}",
        scale.clusters, scale.days, scale.pairs, scale.ping_pairs, scale.cong_pairs,
        scale.seed
    );
    let t0 = Instant::now();
    let scenario = Scenario::build(scale);
    println!("world built in {:?}\n", t0.elapsed());

    // Observability: one registry for the whole run. Sharing it with the
    // network/oracle counter cells and installing it globally costs a few
    // relaxed atomics per probe and never changes a measured byte (the
    // equivalence tests pin that).
    let registry = Arc::new(s2s_obs::Registry::new());
    scenario.net.observe(&registry);
    s2s_obs::install(Arc::clone(&registry));

    let needs_long = wanted.iter().any(|w| {
        matches!(
            *w,
            "table1" | "fig2a" | "fig2b" | "fig3a" | "fig3b" | "fig4" | "fig5"
                | "fig6" | "fig10a" | "fig10b"
        )
    });
    let mut degraded = false;
    let long = if needs_long {
        let t = Instant::now();
        let reopen = snapshot_path.as_deref().filter(|p| p.exists());
        let (data, digest) = if let Some(path) = reopen {
            // Persistence fast path: stream the campaign's saved arenas
            // back out-of-core — no measurement, no line re-import, and
            // only the arenas plus one block batch are ever resident.
            let options = s2s_probe::Snapshot::options().lossy(true).stream(true);
            let shard_paths: Vec<std::path::PathBuf> = if path.is_dir() {
                let dir = options
                    .open_dir(path)
                    .unwrap_or_else(|e| snapshot_open_fail(path, e));
                println!(
                    "snapshot: {} shard(s) in {}",
                    dir.paths().len(),
                    path.display()
                );
                dir.paths().to_vec()
            } else {
                vec![path.to_path_buf()]
            };
            // Pass 1: fold the dataset digest batch-by-batch in shard
            // order (identical to digesting the merged store) and
            // accumulate the damage report and arena summary.
            let mut rep = s2s_probe::SnapshotReport::default();
            let mut digest = s2s_probe::fabric::FNV64_OFFSET;
            let (mut hop_slots, mut seq_slots) = (0usize, 0usize);
            let (mut distinct_addrs, mut distinct_seqs) = (0usize, 0usize);
            let mut arena_bytes = 0usize;
            for p in &shard_paths {
                let mut reader =
                    options.open(p).unwrap_or_else(|e| snapshot_open_fail(p, e));
                loop {
                    match reader.next_batch() {
                        Ok(Some(batch)) => {
                            digest = fabric::store_digest_fold(digest, batch);
                            hop_slots += batch.stats().hop_slots;
                        }
                        Ok(None) => break,
                        Err(e) => snapshot_open_fail(p, e),
                    }
                }
                let s = reader.arena().stats();
                distinct_addrs += s.distinct_addrs;
                distinct_seqs += s.distinct_seqs;
                seq_slots += s.seq_slots;
                arena_bytes += s.arena_bytes;
                rep.merge(reader.report());
            }
            rep.publish(&registry);
            println!(
                "snapshot: reopened {} — {} traces ({} skipped), {} sink state(s){}",
                path.display(),
                rep.traces,
                rep.skipped_traces,
                rep.sinks,
                if rep.empty {
                    ", EMPTY"
                } else if rep.torn {
                    ", TORN"
                } else {
                    ""
                }
            );
            if rep.empty {
                eprintln!(
                    "snapshot: {} is an empty snapshot (no segments) — \
                     nothing to analyze",
                    path.display()
                );
            }
            if !rep.clean() {
                degraded = true;
                for e in &rep.first_errors {
                    eprintln!("snapshot damage: {e}");
                }
            }
            // Pass 2: the analysis front door streams the same source —
            // a fresh reader per shard, byte-identical to the in-memory
            // pipeline (the equivalence tests pin that).
            let timelines = if path.is_dir() {
                let dir = options
                    .open_dir(path)
                    .unwrap_or_else(|e| snapshot_open_fail(path, e));
                s2s_core::Analysis::new(dir).timelines(&scenario.ip2asn)
            } else {
                let reader = options
                    .open(path)
                    .unwrap_or_else(|e| snapshot_open_fail(path, e));
                s2s_core::Analysis::new(reader).timelines(&scenario.ip2asn)
            }
            .unwrap_or_else(|e| snapshot_open_fail(path, e));
            // Snapshots persist the dataset, not the campaign's slot
            // accounting; the open report maps damage onto coverage.
            let report = s2s_probe::CampaignReport {
                offered: rep.traces + rep.skipped_traces,
                delivered: rep.traces,
                lost_slots: rep.skipped_traces,
                ..s2s_probe::CampaignReport::default()
            };
            let arena = s2s_probe::StoreStats {
                traces: rep.traces,
                distinct_addrs,
                distinct_seqs,
                hop_slots,
                seq_slots,
                arena_bytes,
                dedup_ratio: if seq_slots == 0 {
                    0.0
                } else {
                    hop_slots as f64 / seq_slots as f64
                },
            };
            let data = s2s_bench::experiments::LongTermData {
                pairs: fabric::longterm_pairs(&scenario),
                timelines,
                report,
                arena: Some(arena),
            };
            (data, digest)
        } else if workers > 1 {
            // Scale-out fabric: shard the pair space across worker
            // subprocesses of this same binary (`reproduce worker`),
            // merge byte-identically, survive seeded crash schedules.
            let ckpt_dir = std::env::temp_dir()
                .join(format!("s2s-fabric-{}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&ckpt_dir) {
                eprintln!("cannot create fabric checkpoint dir: {e}");
                ExitCode::Campaign.exit();
            }
            let program = std::env::current_exe().unwrap_or_else(|e| {
                eprintln!("cannot locate worker executable: {e}");
                ExitCode::Campaign.exit();
            });
            let launcher = fabric::worker_launcher(
                program,
                vec!["worker".to_string()],
                "longterm",
                workers,
                &ckpt_dir,
                Vec::new(),
            );
            let cfg = s2s_probe::FabricConfig::from_env(workers);
            let run = fabric::collect_longterm_fabric(&scenario, cfg, launcher);
            let _ = std::fs::remove_dir_all(&ckpt_dir);
            let run = run.unwrap_or_else(|e| {
                eprintln!("fabric collection failed: {e}");
                ExitCode::Campaign.exit();
            });
            let s = &run.outcome.stats;
            println!(
                "fabric: {} shards over {workers} workers — {} launches, \
                 {} retries, {} recoveries, {} lost",
                s.shards, s.launches, s.retries, s.recoveries, s.lost
            );
            if s.lost > 0 {
                degraded = true;
                println!(
                    "fabric: DEGRADED — {} shard(s) lost after the retry budget; \
                     their slots are lost rows (campaign.lost_slots = {})",
                    s.lost, run.data.report.lost_slots
                );
            }
            write_snapshot_if_asked(snapshot_path.as_deref(), &run.store, run.digest);
            (run.data, run.digest)
        } else {
            let (data, digest, store) =
                fabric::collect_longterm_digest(&scenario, &FaultProfile::from_env());
            write_snapshot_if_asked(snapshot_path.as_deref(), &store, digest);
            (data, digest)
        };
        println!("long-term dataset digest: {digest:016x}");
        println!(
            "long-term campaign: {} timelines in {:?} (probes delivered: {})",
            data.timelines.len(),
            t.elapsed(),
            data.report.coverage()
        );
        if let Some(a) = &data.arena {
            println!(
                "columnar arena: {} traces, {} distinct addrs, {} distinct hop \
                 sequences, {:.1}x hop dedup, {} arena bytes, {} analysis threads",
                a.traces,
                a.distinct_addrs,
                a.distinct_seqs,
                a.dedup_ratio,
                a.arena_bytes,
                s2s_probe::env::threads()
            );
        }
        let cs = scenario.oracle.cache_stats();
        println!(
            "routing: {} availability epochs, {} epoch configs derived, \
             table cache {} hits / {} misses / {} evictions\n",
            scenario.oracle.dynamics().epoch_count(),
            cs.epoch_configs,
            cs.hits,
            cs.misses,
            cs.evictions
        );
        Some(data)
    } else {
        None
    };

    // Short-term campaigns run mid-study so routing dynamics and congestion
    // episodes are in full swing regardless of the configured horizon.
    let mid = scenario.scale.days / 2;
    let needs_cong = wanted.iter().any(|w| matches!(*w, "sec51" | "sec53" | "fig9"));
    let cong = if needs_cong {
        let t = Instant::now();
        let (_, congested) = congestion::sec51(&scenario, SimTime::from_days(mid));
        println!("(§5.1 campaign in {:?})\n", t.elapsed());
        Some(congested)
    } else {
        None
    };
    let needs_census = wanted.iter().any(|w| matches!(*w, "sec53" | "fig9"));
    let census = if needs_census {
        let t = Instant::now();
        let c = congestion::sec53(
            &scenario,
            cong.as_deref().unwrap_or(&[]),
            SimTime::from_days(mid + 7),
            21,
        );
        println!("(§5.3 campaign in {:?})\n", t.elapsed());
        Some(c)
    } else {
        None
    };

    for w in &wanted {
        let t = Instant::now();
        match *w {
            "table1" => {
                let d = long.as_ref().unwrap();
                longterm::table1(d, Protocol::V4);
                longterm::table1(d, Protocol::V6);
            }
            "fig1" => {
                example::fig1(&scenario, 6);
            }
            "fig2a" => {
                let d = long.as_ref().unwrap();
                longterm::fig2a(d, Protocol::V4);
                longterm::fig2a(d, Protocol::V6);
            }
            "fig2b" => {
                let d = long.as_ref().unwrap();
                longterm::fig2b(d, Protocol::V4);
                longterm::fig2b(d, Protocol::V6);
            }
            "fig3a" => {
                let d = long.as_ref().unwrap();
                longterm::fig3a(d, Protocol::V4);
                longterm::fig3a(d, Protocol::V6);
            }
            "fig3b" => {
                let d = long.as_ref().unwrap();
                longterm::fig3b(d, Protocol::V4);
                longterm::fig3b(d, Protocol::V6);
            }
            "fig4" => {
                let d = long.as_ref().unwrap();
                longterm::fig45(d, Protocol::V4, false);
                longterm::fig45(d, Protocol::V6, false);
                if let Some(p) = longterm::fig4_shortlived_premium(d, Protocol::V4) {
                    println!(
                        "  short-lived-path premium (mean Δ10, short − long lifetimes): \
                         {p:+.1} ms (paper: positive — bad paths are short-lived)"
                    );
                }
            }
            "fig5" => {
                let d = long.as_ref().unwrap();
                longterm::fig45(d, Protocol::V4, true);
                longterm::fig45(d, Protocol::V6, true);
            }
            "fig6" => {
                let d = long.as_ref().unwrap();
                longterm::fig6(d, Protocol::V4);
                longterm::fig6(d, Protocol::V6);
            }
            "fig7" => {
                shortterm::fig7(&scenario, 22, SimTime::from_days(mid));
            }
            "sec51" => {} // already printed while collecting
            "sec53" => {} // already printed while collecting
            "fig8" => {
                ownercheck::fig8(&scenario);
            }
            "fig9" => {
                congestion::fig9(&scenario, census.as_ref().unwrap());
            }
            "fig10a" => {
                dualstack::fig10a(long.as_ref().unwrap());
            }
            "fig10b" => {
                let d = long.as_ref().unwrap();
                dualstack::fig10b(&scenario, d, Protocol::V4);
                dualstack::fig10b(&scenario, d, Protocol::V6);
            }
            "loss" => {
                extensions::loss(&scenario, SimTime::from_days(mid + 1));
            }
            "shared" => {
                extensions::shared_infrastructure(&scenario, SimTime::from_days(mid));
            }
            "coloc" => {
                extensions::coloc(&scenario, SimTime::from_days(mid + 2));
            }
            "abw" => {
                extensions::abw(&scenario, SimTime::from_days(mid + 3));
            }
            "faults" => {
                faultsweep::fault_sweep(&scenario);
            }
            _ => unreachable!(),
        }
        println!("[{w} done in {:?}]\n", t.elapsed());
    }
    println!("total: {:?}", t0.elapsed());

    metrics_tail(&registry, metrics_json.as_deref());
    if degraded {
        ExitCode::Degraded.exit();
    }
}
