//! The simulated world the experiments run on.

use s2s_bgp::{AsRelStore, Ip2AsnMap};
use s2s_core::timeline::{TimelineBuilder, TraceTimeline};
use s2s_netsim::{CongestionModel, CongestionParams, Network, NetworkParams};
use s2s_probe::{
    Campaign, CampaignConfig, CampaignReport, FaultProfile, RetryPolicy, TraceOptions,
    TraceStore, TracerouteMode,
};
use s2s_routing::{Dynamics, DynamicsParams, RouteOracle};
use s2s_topology::{build_topology, Topology, TopologyParams};
use s2s_types::{ClusterId, SimTime};
use std::sync::Arc;

/// Experiment scale, from `S2S_*` environment variables.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Master seed.
    pub seed: u64,
    /// CDN clusters deployed.
    pub clusters: usize,
    /// Days of long-term campaign.
    pub days: u32,
    /// Directed (pair, both directions) samples for the long-term mesh.
    pub pairs: usize,
    /// Pairs in the short-term ping campaign.
    pub ping_pairs: usize,
    /// Congested-pair subset traced every 30 minutes.
    pub cong_pairs: usize,
}

impl Scale {
    /// The default experiment scale (DESIGN.md §8), overridable via the
    /// `S2S_SEED` / `S2S_CLUSTERS` / `S2S_DAYS` / `S2S_PAIRS` /
    /// `S2S_PING_PAIRS` / `S2S_CONG_PAIRS` knobs. Malformed values warn
    /// once and fall back (see `s2s_types::env`); zero-cluster or zero-day
    /// worlds are rejected the same way.
    pub fn from_env() -> Self {
        use s2s_types::env::{var_u64, var_usize, var_usize_at_least};
        Scale {
            seed: var_u64("S2S_SEED", 20151201),
            clusters: var_usize_at_least("S2S_CLUSTERS", 120, 2),
            days: var_usize_at_least("S2S_DAYS", 485, 1) as u32,
            pairs: var_usize("S2S_PAIRS", 600),
            ping_pairs: var_usize("S2S_PING_PAIRS", 4000),
            cong_pairs: var_usize("S2S_CONG_PAIRS", 400),
        }
    }

    /// A small scale for tests and Criterion benches.
    pub fn smoke() -> Self {
        Scale {
            seed: 7,
            clusters: 24,
            days: 40,
            pairs: 60,
            ping_pairs: 200,
            cong_pairs: 40,
        }
    }
}

/// The assembled world.
pub struct Scenario {
    /// Scale it was built at.
    pub scale: Scale,
    /// The topology.
    pub topo: Arc<Topology>,
    /// The routing oracle (with dynamics).
    pub oracle: Arc<RouteOracle>,
    /// The measurement plane.
    pub net: Arc<Network>,
    /// IP→ASN from the simulated BGP table.
    pub ip2asn: Arc<Ip2AsnMap>,
    /// AS relationships (ground truth, CAIDA-shaped).
    pub rels: Arc<AsRelStore>,
}

impl Scenario {
    /// Builds the world for a scale.
    pub fn build(scale: Scale) -> Scenario {
        let horizon = SimTime::from_days(scale.days + 60);
        let topo = Arc::new(build_topology(&TopologyParams {
            seed: scale.seed,
            n_clusters: scale.clusters,
            ..TopologyParams::default()
        }));
        let dynamics = Arc::new(Dynamics::generate(
            &topo,
            &DynamicsParams { seed: scale.seed ^ 0xD1CE, horizon, ..DynamicsParams::default() },
        ));
        let oracle = Arc::new(RouteOracle::new(Arc::clone(&topo), dynamics));
        let congestion = CongestionModel::generate(
            &topo,
            &CongestionParams {
                seed: scale.seed ^ 0xC09,
                horizon,
                ..CongestionParams::default()
            },
        );
        let net = Arc::new(Network::new(
            Arc::clone(&oracle),
            congestion,
            NetworkParams::default(),
        ));
        let ip2asn = Arc::new(Ip2AsnMap::from_topology(&topo));
        let rels = Arc::new(AsRelStore::from_topology(&topo));
        Scenario { scale, topo, oracle, net, ip2asn, rels }
    }

    /// Builds at the environment scale.
    pub fn from_env() -> Scenario {
        Scenario::build(Scale::from_env())
    }

    /// Deterministically samples `n` *unordered* cluster pairs and returns
    /// both directions of each, adjacent ((a,b) then (b,a)) — the layout
    /// the forward/reverse analyses expect.
    pub fn sample_pair_list(&self, n_unordered: usize, salt: u64) -> Vec<(ClusterId, ClusterId)> {
        let c = self.topo.clusters.len();
        let mut out = Vec::with_capacity(n_unordered * 2);
        let mut seen = std::collections::HashSet::new();
        let mut k = 0u64;
        while seen.len() < n_unordered && seen.len() < c * (c - 1) / 2 {
            let r1 = mix(self.scale.seed ^ salt ^ k.wrapping_mul(0x9E37));
            let r2 = mix(r1 ^ 0x5bd1e995);
            k += 1;
            let a = (r1 % c as u64) as usize;
            let b = (r2 % c as u64) as usize;
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                out.push((ClusterId::from(key.0), ClusterId::from(key.1)));
                out.push((ClusterId::from(key.1), ClusterId::from(key.0)));
            }
        }
        out
    }

    /// Runs the long-term (3-hourly, dual-protocol) traceroute campaign
    /// over a pair list, returning one [`TraceTimeline`] per
    /// (pair, protocol), pair-major.
    ///
    /// Mirrors the paper's tooling history (§2.1): classic traceroute for
    /// the first ten months, then Paris traceroute for IPv4 (IPv6 stayed on
    /// the classic tool) — so the data set contains the classic tool's
    /// ECMP-splice artifacts, including the small rate of false AS loops.
    pub fn long_term_timelines(
        &self,
        pairs: &[(ClusterId, ClusterId)],
    ) -> Vec<TraceTimeline> {
        let cfg = CampaignConfig::long_term(self.scale.days);
        let map = &self.ip2asn;
        let opts_of = self.long_term_opts_of();
        let (builders, _report) = Campaign::new(cfg)
            .run_traceroute_with(
                &self.net,
                pairs,
                opts_of,
                |s, d, p| TimelineBuilder::new(s, d, p, map),
                |b, rec| b.push(rec),
            )
            .expect("in-memory campaign cannot fail");
        builders.into_iter().map(TimelineBuilder::finish).collect()
    }

    /// [`Scenario::long_term_timelines`] behind a fault-injected
    /// measurement plane: lost slots fold as pathless samples (so every
    /// timeline still has one sample per scheduled instant), and the
    /// [`CampaignReport`] says what the plane cost. Under a quiet profile
    /// the timelines are identical to the plain runner's.
    pub fn long_term_timelines_faulty(
        &self,
        pairs: &[(ClusterId, ClusterId)],
        profile: &FaultProfile,
        retry: &RetryPolicy,
    ) -> (Vec<TraceTimeline>, CampaignReport) {
        let cfg = CampaignConfig::long_term(self.scale.days);
        let map = &self.ip2asn;
        let opts_of = self.long_term_opts_of();
        let (builders, report) = Campaign::new(cfg)
            .faults(*profile)
            .retry(*retry)
            .run_traceroute_with(
                &self.net,
                pairs,
                opts_of,
                |s, d, p| TimelineBuilder::new(s, d, p, map),
                |b, rec| b.push(rec),
            )
            .expect("in-memory campaign cannot fail");
        (builders.into_iter().map(TimelineBuilder::finish).collect(), report)
    }

    /// [`Scenario::long_term_timelines_faulty`]'s columnar twin: instead of
    /// annotating record-by-record into builders, the campaign folds raw
    /// records into one [`TraceStore`] arena per (pair, protocol) and the
    /// arenas are absorbed — in accumulator order, so the merged store holds
    /// the exact record sequence the legacy path saw, pair-major — into one
    /// corpus for the columnar analysis driver.
    pub fn long_term_store_faulty(
        &self,
        pairs: &[(ClusterId, ClusterId)],
        profile: &FaultProfile,
        retry: &RetryPolicy,
    ) -> (TraceStore, CampaignReport) {
        let cfg = CampaignConfig::long_term(self.scale.days);
        let opts_of = self.long_term_opts_of();
        let (stores, report) = Campaign::new(cfg)
            .faults(*profile)
            .retry(*retry)
            .run_traceroute_with(
                &self.net,
                pairs,
                opts_of,
                |_, _, _| TraceStore::new(),
                |st, rec| st.push(&rec),
            )
            .expect("in-memory campaign cannot fail");
        let mut merged = TraceStore::new();
        for st in &stores {
            merged.absorb(st);
        }
        (merged, report)
    }

    /// The paper's tooling history (§2.1) as a per-measurement option
    /// picker: classic traceroute for the first ten months, then Paris
    /// traceroute for IPv4 (IPv6 stayed on the classic tool). Crate-visible
    /// so fabric workers run their shard with the exact options of the
    /// one-process campaign.
    pub(crate) fn long_term_opts_of(
        &self,
    ) -> impl Fn(SimTime, s2s_types::Protocol) -> TraceOptions {
        let paris_from = SimTime::from_days(self.scale.days.saturating_mul(10) / 16);
        move |t, proto| {
            let mode = if proto == s2s_types::Protocol::V4 && t >= paris_from {
                TracerouteMode::Paris
            } else {
                TracerouteMode::Classic
            };
            TraceOptions { mode, ..TraceOptions::default() }
        }
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_builds() {
        let s = Scenario::build(Scale::smoke());
        assert_eq!(s.topo.clusters.len(), 24);
        assert!(s.ip2asn.announcement_count() > 0);
        assert!(!s.rels.is_empty());
    }

    #[test]
    fn pair_sampling_is_deterministic_and_bidirectional() {
        let s = Scenario::build(Scale::smoke());
        let a = s.sample_pair_list(10, 1);
        let b = s.sample_pair_list(10, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for w in a.chunks(2) {
            assert_eq!(w[0].0, w[1].1);
            assert_eq!(w[0].1, w[1].0);
        }
        let c = s.sample_pair_list(10, 2);
        assert_ne!(a, c, "different salts should sample differently");
    }
}
