//! The always-on measurement service behind `reproduce serve`.
//!
//! Instead of one batch campaign, the service advances the long-term
//! schedule one epoch at a time ([`Service::advance`]): each epoch runs
//! every (pair, protocol) slot through the probe plane's per-epoch core
//! (fault decisions keyed on the global sample index, so the stream is
//! byte-identical to a batch run), appends the records to live per-slot
//! [`TraceStore`]s and [`PairProfile`]s, and folds the epoch delta into an
//! [`Analysis`]`<`[`IncrementalState`]`>` — so the §4 analyses are already
//! computed when a query arrives, in O(pair state), never O(corpus).
//!
//! Periodically (and on graceful shutdown) the service checkpoints through
//! the snapshot plane: the merged store plus serialized profile lines and
//! a service-state line. A restarted service resumes from the checkpoint
//! ([`Service::resume`]) and replays only the epochs measured after it —
//! the recovered run's dataset, digest, profiles, and report are
//! byte-identical to an uninterrupted one (pinned by the tests below).
//!
//! Queries arrive as lines (stdin for `reproduce serve`) and are answered
//! as single `ok {json}` / `err reason` lines — see [`Service::answer`]
//! for the command set.
//!
//! Knobs (registered in `s2s_probe::env::KNOWN_KNOBS`, resolved here
//! because their defaults are service policy): `S2S_SERVICE_CADENCE_MS`
//! (wall-clock sleep between epochs, 0 = free-run),
//! `S2S_SERVICE_SNAP_EVERY` (checkpoint cadence in epochs),
//! `S2S_SERVICE_QUERY_BUDGET` (queries answered before refusal).

use crate::fabric::{self, store_digest};
use crate::scenario::Scenario;
use s2s_core::congestion::{detect_profile, DetectParams};
use s2s_core::{Analysis, IncrementalState};
use s2s_probe::env::ResolvedKnob;
use s2s_probe::{
    snapshot, Campaign, CampaignConfig, CampaignReport, FaultProfile, PairProfile,
    PairProfileSink, RetryPolicy, StreamSink, TraceStore,
};
use s2s_types::{ClusterId, ExitCode, Protocol};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};

/// Wall-clock sleep between service epochs: the `S2S_SERVICE_CADENCE_MS`
/// knob, default 0 (free-run — simulated time needs no pacing; a nonzero
/// cadence makes the daemon observable while it runs).
pub fn service_cadence_ms() -> u64 {
    s2s_types::env::var_u64("S2S_SERVICE_CADENCE_MS", 0)
}

/// Checkpoint cadence in epochs: the `S2S_SERVICE_SNAP_EVERY` knob when
/// set to a valid integer ≥ 1, default 8 — a crash loses at most
/// `snap_every - 1` epochs of work.
pub fn service_snap_every() -> usize {
    s2s_types::env::var_usize_at_least("S2S_SERVICE_SNAP_EVERY", 8, 1)
}

/// Queries one service run answers before refusing with `err budget`:
/// the `S2S_SERVICE_QUERY_BUDGET` knob when set to a valid integer ≥ 1,
/// default 4096. Exhaustion is reported through [`ExitCode::Query`] after
/// the final snapshot still flushes.
pub fn service_query_budget() -> usize {
    s2s_types::env::var_usize_at_least("S2S_SERVICE_QUERY_BUDGET", 4096, 1)
}

/// The service knobs, resolved for `reproduce --print-config` — they live
/// here (not `s2s_probe::env`) because their defaults are service policy,
/// not measurement-plane policy.
pub fn service_knobs() -> Vec<ResolvedKnob> {
    let set = |name: &str| s2s_types::env::var_raw(name).is_some();
    let knob = |name: &'static str, value: String, default: &str, doc: &'static str| {
        ResolvedKnob { name, value, default: default.to_string(), set: set(name), doc }
    };
    vec![
        knob(
            "S2S_SERVICE_CADENCE_MS",
            service_cadence_ms().to_string(),
            "0",
            "wall-clock sleep between service epochs (0 = free-run)",
        ),
        knob(
            "S2S_SERVICE_SNAP_EVERY",
            service_snap_every().to_string(),
            "8",
            "service checkpoint cadence, epochs",
        ),
        knob(
            "S2S_SERVICE_QUERY_BUDGET",
            service_query_budget().to_string(),
            "4096",
            "queries a service run answers before refusing",
        ),
    ]
}

/// Service policy, from the `S2S_SERVICE_*` knobs plus the fault/retry
/// configuration the batch campaign would use.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Sleep between epochs, ms (0 = free-run).
    pub cadence_ms: u64,
    /// Checkpoint every this many epochs.
    pub snap_every: usize,
    /// Queries answered before `err budget`.
    pub query_budget: usize,
    /// Checkpoint path (`None` = no persistence, crash loses everything).
    pub snapshot_path: Option<PathBuf>,
    /// Fault profile for the measurement plane.
    pub profile: FaultProfile,
    /// Retry policy for faulted slots.
    pub retry: RetryPolicy,
}

impl ServiceConfig {
    /// Resolves everything from the environment (`S2S_SERVICE_*`,
    /// `S2S_FAULT_*`, `S2S_SNAPSHOT_PATH`).
    pub fn from_env() -> ServiceConfig {
        ServiceConfig {
            cadence_ms: service_cadence_ms(),
            snap_every: service_snap_every(),
            query_budget: service_query_budget(),
            snapshot_path: s2s_probe::env::snapshot_path(),
            profile: FaultProfile::from_env(),
            retry: RetryPolicy::default(),
        }
    }
}

/// The live state of one always-on measurement service.
///
/// Owns the long-term schedule's per-slot stores and profiles plus the
/// incremental analysis; [`Service::advance`] moves simulated time one
/// epoch, [`Service::answer`] serves one query, [`Service::checkpoint`]
/// flushes through the snapshot plane. The `reproduce serve` loop
/// ([`serve`]) wires these to a stdin/stdout line protocol.
pub struct Service<'a> {
    scenario: &'a Scenario,
    cfg: ServiceConfig,
    camp_cfg: CampaignConfig,
    campaign: Campaign,
    pairs: Vec<(ClusterId, ClusterId)>,
    slot_of: HashMap<(ClusterId, ClusterId, Protocol), usize>,
    sink: PairProfileSink,
    substores: Vec<TraceStore>,
    profiles: Vec<PairProfile>,
    analysis: Analysis<IncrementalState>,
    report: CampaignReport,
    next_epoch: usize,
    resumed_from: Option<usize>,
    queries_answered: usize,
}

impl<'a> Service<'a> {
    /// A fresh service over `scenario`'s long-term mesh (same pair list,
    /// schedule, and tool-history options as the batch campaign, so the
    /// finished stream is byte-identical to `reproduce run`'s).
    pub fn new(scenario: &'a Scenario, cfg: ServiceConfig) -> Service<'a> {
        let camp_cfg = CampaignConfig::long_term(scenario.scale.days);
        let campaign =
            Campaign::new(camp_cfg.clone()).faults(cfg.profile).retry(cfg.retry);
        let pairs = fabric::longterm_pairs(scenario);
        let sink = PairProfileSink::for_config(&camp_cfg);
        let mut slot_of = HashMap::new();
        let mut profiles = Vec::new();
        for (pi, &(s, d)) in pairs.iter().enumerate() {
            for (qi, &p) in camp_cfg.protocols.iter().enumerate() {
                slot_of.insert((s, d, p), pi * camp_cfg.protocols.len() + qi);
                profiles.push(sink.init(s, d, p));
            }
        }
        let substores = (0..profiles.len()).map(|_| TraceStore::new()).collect();
        Service {
            scenario,
            cfg,
            camp_cfg,
            campaign,
            pairs,
            slot_of,
            sink,
            substores,
            profiles,
            analysis: Analysis::new(IncrementalState::new()),
            report: CampaignReport::default(),
            next_epoch: 0,
            resumed_from: None,
            queries_answered: 0,
        }
    }

    /// Total epochs in the schedule.
    pub fn n_epochs(&self) -> usize {
        self.camp_cfg.n_samples()
    }

    /// The next epoch to measure (== epochs already folded).
    pub fn next_epoch(&self) -> usize {
        self.next_epoch
    }

    /// The epoch this service resumed from, if it recovered a checkpoint.
    pub fn resumed_from(&self) -> Option<usize> {
        self.resumed_from
    }

    /// The merged campaign report so far (per-epoch reports summed — equal
    /// to the batch report once the schedule completes).
    pub fn report(&self) -> &CampaignReport {
        &self.report
    }

    /// The live incremental analysis.
    pub fn analysis(&self) -> &Analysis<IncrementalState> {
        &self.analysis
    }

    /// The live per-slot profiles (pair-major, protocol-minor).
    pub fn profiles(&self) -> &[PairProfile] {
        &self.profiles
    }

    /// Measures one epoch: every (pair, protocol) slot probes once, the
    /// records append to the live stores/profiles, and the epoch delta
    /// folds into the incremental analysis. Returns `false` (and does
    /// nothing) once the schedule is complete.
    pub fn advance(&mut self) -> bool {
        if self.next_epoch >= self.n_epochs() {
            return false;
        }
        let epoch = self.next_epoch;
        let opts_of = self.scenario.long_term_opts_of();
        let mut delta = TraceStore::new();
        let (substores, profiles, sink) =
            (&mut self.substores, &mut self.profiles, &self.sink);
        let r = self.campaign.run_traceroute_epoch(
            &self.scenario.net,
            &self.pairs,
            opts_of,
            epoch,
            |slot, rec| {
                substores[slot].push(&rec);
                sink.fold(&mut profiles[slot], epoch as u64, rec.t, rec.e2e_rtt_ms);
                delta.push(&rec);
            },
        );
        self.analysis.update(&delta, &self.scenario.ip2asn);
        self.report.merge(&r);
        self.next_epoch += 1;
        s2s_obs::inc("service.epochs");
        s2s_obs::add("service.records", delta.len() as u64);
        true
    }

    /// The dataset so far, merged in slot order — the exact record
    /// sequence (pair-major, time within each slot) the batch campaign's
    /// merged store holds after the same number of epochs.
    pub fn merged_store(&self) -> TraceStore {
        let mut merged = TraceStore::new();
        for st in &self.substores {
            merged.absorb(st);
        }
        merged
    }

    /// The dataset digest so far — comparable against the `long-term
    /// dataset digest` line a batch `reproduce run` prints.
    pub fn digest(&self) -> u64 {
        store_digest(&self.merged_store())
    }

    /// Flushes a checkpoint: the merged store plus sink lines (one
    /// service-state line, the report line, then every profile line) go
    /// through the snapshot plane's crash-safe write. Returns bytes
    /// written.
    pub fn checkpoint(&self, path: &Path) -> io::Result<u64> {
        let mut lines = Vec::with_capacity(self.profiles.len() + 2);
        lines.push(format!("SERVICE|{}", self.next_epoch));
        lines.push(self.report.to_line());
        lines.extend(self.profiles.iter().map(PairProfile::to_line));
        let bytes = snapshot::write_file(path, &self.merged_store(), &lines)?;
        s2s_obs::inc("service.snapshots");
        if let Some(reg) = s2s_obs::installed() {
            reg.gauge("service.checkpoint_epoch").set(self.next_epoch as u64);
        }
        Ok(bytes)
    }

    /// Reopens a checkpoint and rebuilds the live state: records split
    /// back into their slots, profiles parse from their lines, and the
    /// whole recovered store folds as one delta into a fresh incremental
    /// analysis (split-invariance makes that byte-identical to the
    /// epoch-by-epoch folds it replaces). The caller then replays epochs
    /// `resumed_from()..` — everything measured after the checkpoint is
    /// the exact lost work.
    pub fn resume(
        scenario: &'a Scenario,
        cfg: ServiceConfig,
        path: &Path,
    ) -> io::Result<Service<'a>> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let snap = snapshot::open_file(path)?;
        let mut svc = Service::new(scenario, cfg);
        let mut lines = snap.sinks.iter();
        let state = lines
            .next()
            .and_then(|l| l.strip_prefix("SERVICE|"))
            .ok_or_else(|| bad("checkpoint has no SERVICE state line".into()))?;
        let next_epoch: usize =
            state.parse().map_err(|_| bad(format!("bad SERVICE epoch '{state}'")))?;
        if next_epoch > svc.n_epochs() {
            return Err(bad(format!(
                "checkpoint epoch {next_epoch} exceeds the {}-epoch schedule \
                 (different scale?)",
                svc.n_epochs()
            )));
        }
        let report_line =
            lines.next().ok_or_else(|| bad("checkpoint has no report line".into()))?;
        svc.report = CampaignReport::from_line(report_line).map_err(bad)?;
        let profile_lines: Vec<&String> = lines.collect();
        if profile_lines.len() != svc.profiles.len() {
            return Err(bad(format!(
                "checkpoint has {} profile line(s), schedule needs {}",
                profile_lines.len(),
                svc.profiles.len()
            )));
        }
        for (slot, line) in profile_lines.into_iter().enumerate() {
            let p = PairProfile::parse(line)?;
            let expect = &svc.profiles[slot];
            if (p.src, p.dst, p.proto) != (expect.src, expect.dst, expect.proto) {
                return Err(bad(format!(
                    "checkpoint profile {slot} is ({}, {}, {:?}), schedule says \
                     ({}, {}, {:?})",
                    p.src, p.dst, p.proto, expect.src, expect.dst, expect.proto
                )));
            }
            svc.profiles[slot] = p;
        }
        // Every slot folds exactly one record per epoch (lost slots fold a
        // synthetic row), so the recovered store's size is pinned.
        let expect_records = next_epoch * svc.substores.len();
        if snap.store.len() != expect_records {
            return Err(bad(format!(
                "checkpoint holds {} record(s), epoch {next_epoch} × {} slot(s) \
                 needs {expect_records}",
                snap.store.len(),
                svc.substores.len()
            )));
        }
        for v in snap.store.iter() {
            let rec = v.to_record();
            let slot = *svc
                .slot_of
                .get(&(rec.src, rec.dst, rec.proto))
                .ok_or_else(|| {
                    bad(format!(
                        "checkpoint record for unknown slot ({}, {}, {:?})",
                        rec.src, rec.dst, rec.proto
                    ))
                })?;
            svc.substores[slot].push(&rec);
        }
        svc.analysis.update(&snap.store, &scenario.ip2asn);
        svc.next_epoch = next_epoch;
        svc.resumed_from = Some(next_epoch);
        s2s_obs::inc("service.resumes");
        if let Some(reg) = s2s_obs::installed() {
            reg.gauge("service.resumed_epoch").set(next_epoch as u64);
        }
        Ok(svc)
    }

    /// Answers one query line. Every response is a single line: `ok
    /// {json}` on success, `err reason` otherwise. Commands:
    ///
    /// | Query | Answer |
    /// |---|---|
    /// | `pair <src> <dst> <v4\|v6>` | RTT p5/p50/p95, mean, stddev, coverage from the slot's mergeable sketch |
    /// | `diurnal <src> <dst> <v4\|v6>` | consistent-congestion verdict from the slot's streamed profile |
    /// | `changes <src> <dst> <v4\|v6>` | folded path-change count, magnitudes, prevalence, popular path |
    /// | `advice <src> <dst>` | v4-vs-v6 preference from the two slots' median RTTs |
    /// | `stats` | epochs folded, records, groups, queries served |
    ///
    /// All answers read O(pair state) — nothing rescans the corpus. After
    /// `query_budget` answers, every further query gets `err budget
    /// exhausted` (and [`serve`] exits [`ExitCode::Query`]).
    pub fn answer(&mut self, line: &str) -> String {
        if self.queries_answered >= self.cfg.query_budget {
            s2s_obs::inc("query.rejected");
            return "err budget exhausted".to_string();
        }
        self.queries_answered += 1;
        let out = s2s_obs::timed("query.answer", || self.answer_inner(line));
        s2s_obs::inc(if out.starts_with("ok") { "query.served" } else { "query.errors" });
        out
    }

    /// Queries answered so far.
    pub fn queries_answered(&self) -> usize {
        self.queries_answered
    }

    /// Whether the query budget is spent.
    pub fn budget_exhausted(&self) -> bool {
        self.queries_answered >= self.cfg.query_budget
    }

    fn answer_inner(&self, line: &str) -> String {
        let mut it = line.split_whitespace();
        let cmd = match it.next() {
            Some(c) => c,
            None => return "err empty query".to_string(),
        };
        let args: Vec<&str> = it.collect();
        match (cmd, args.as_slice()) {
            ("pair", [s, d, p]) => self.pair_query(s, d, p),
            ("diurnal", [s, d, p]) => self.diurnal_query(s, d, p),
            ("changes", [s, d, p]) => self.changes_query(s, d, p),
            ("advice", [s, d]) => self.advice_query(s, d),
            ("stats", []) => format!(
                "ok {{\"cmd\":\"stats\",\"epochs\":{},\"records\":{},\"groups\":{},\
                 \"queries\":{}}}",
                self.next_epoch,
                self.analysis.source().samples(),
                self.analysis.source().len(),
                self.queries_answered
            ),
            _ => format!(
                "err unknown query '{line}' (known: pair, diurnal, changes, advice, \
                 stats, quit)"
            ),
        }
    }

    fn slot(&self, s: &str, d: &str, p: &str) -> Result<usize, String> {
        let src = s
            .parse::<u32>()
            .map(ClusterId::new)
            .map_err(|_| format!("err bad cluster id '{s}'"))?;
        let dst = d
            .parse::<u32>()
            .map(ClusterId::new)
            .map_err(|_| format!("err bad cluster id '{d}'"))?;
        let proto = match p {
            "v4" => Protocol::V4,
            "v6" => Protocol::V6,
            other => return Err(format!("err bad protocol '{other}' (v4 or v6)")),
        };
        self.slot_of
            .get(&(src, dst, proto))
            .copied()
            .ok_or_else(|| format!("err pair ({s}, {d}, {p}) is not in the mesh"))
    }

    fn pair_query(&self, s: &str, d: &str, p: &str) -> String {
        let slot = match self.slot(s, d, p) {
            Ok(i) => i,
            Err(e) => return e,
        };
        let pr = &self.profiles[slot];
        format!(
            "ok {{\"cmd\":\"pair\",\"src\":{s},\"dst\":{d},\"proto\":\"{p}\",\
             \"offered\":{},\"valid\":{},\"coverage\":{},\"p5\":{},\"p50\":{},\
             \"p95\":{},\"mean\":{},\"stddev\":{}}}",
            pr.offered(),
            pr.valid_samples(),
            json_f64(Some(pr.coverage().fraction())),
            json_f64(pr.quantile(0.05)),
            json_f64(pr.quantile(0.50)),
            json_f64(pr.quantile(0.95)),
            json_f64(pr.mean()),
            json_f64(pr.stddev()),
        )
    }

    fn diurnal_query(&self, s: &str, d: &str, p: &str) -> String {
        let slot = match self.slot(s, d, p) {
            Ok(i) => i,
            Err(e) => return e,
        };
        let pr = &self.profiles[slot];
        // The paper's 600-of-672 floor assumes a finished one-week window;
        // a live service answers as soon as one day of samples folded.
        let params =
            DetectParams { min_valid_samples: pr.samples_per_day(), ..DetectParams::default() };
        match detect_profile(pr, &params) {
            Some(v) => format!(
                "ok {{\"cmd\":\"diurnal\",\"spread_ms\":{},\"psd_ratio\":{},\
                 \"high_variation\":{},\"consistent\":{}}}",
                json_f64(Some(v.spread_ms)),
                json_f64(v.psd_ratio),
                v.high_variation,
                v.consistent
            ),
            None => format!(
                "ok {{\"cmd\":\"diurnal\",\"verdict\":null,\"valid\":{},\
                 \"needed\":{}}}",
                pr.valid_samples(),
                params.min_valid_samples
            ),
        }
    }

    fn changes_query(&self, s: &str, d: &str, p: &str) -> String {
        // Reuses slot() for arg validation; the group index comes from the
        // analysis (first-seen order), not the slot table.
        if let Err(e) = self.slot(s, d, p) {
            return e;
        }
        let (src, dst) =
            (ClusterId::new(s.parse().unwrap()), ClusterId::new(d.parse().unwrap()));
        let proto = if p == "v4" { Protocol::V4 } else { Protocol::V6 };
        let state = self.analysis.source();
        let Some(gi) = state.group_index(src, dst, proto) else {
            return "ok {\"cmd\":\"changes\",\"changes\":0,\"magnitudes\":[],\
                    \"paths\":0,\"popular\":null}"
                .to_string();
        };
        let cs = state.change_stats_of(gi);
        let ps = state.path_stats_of(gi, self.camp_cfg.interval);
        format!(
            "ok {{\"cmd\":\"changes\",\"changes\":{},\"magnitudes\":{:?},\
             \"paths\":{},\"popular\":{},\"prevalence\":{}}}",
            cs.changes,
            cs.magnitudes,
            ps.prevalence.len(),
            ps.popular.map(|i| i.to_string()).unwrap_or_else(|| "null".to_string()),
            json_f64(ps.popular.map(|i| ps.prevalence[i])),
        )
    }

    fn advice_query(&self, s: &str, d: &str) -> String {
        let (v4, v6) = match (self.slot(s, d, "v4"), self.slot(s, d, "v6")) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return e,
        };
        let p4 = self.profiles[v4].quantile(0.50);
        let p6 = self.profiles[v6].quantile(0.50);
        let prefer = match (p4, p6) {
            (Some(a), Some(b)) if a <= b => "\"v4\"",
            (Some(_), Some(_)) => "\"v6\"",
            (Some(_), None) => "\"v4\"",
            (None, Some(_)) => "\"v6\"",
            (None, None) => "null",
        };
        format!(
            "ok {{\"cmd\":\"advice\",\"p50_v4\":{},\"p50_v6\":{},\"prefer\":{prefer}}}",
            json_f64(p4),
            json_f64(p6)
        )
    }
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        _ => "null".to_string(),
    }
}

/// The outcome of one [`serve`] run.
#[derive(Clone, Copy, Debug)]
pub struct ServeOutcome {
    /// The process exit code the caller should use.
    pub exit: ExitCode,
    /// Final dataset digest (also printed as the `long-term dataset
    /// digest` line).
    pub digest: u64,
    /// Epochs measured by *this* process (excludes replayed-from-snapshot
    /// history only in the sense that resumed epochs were loaded, not
    /// re-measured — `resumed_from` says where this process started).
    pub epochs_run: usize,
    /// Where the run resumed from, if it recovered a checkpoint.
    pub resumed_from: Option<usize>,
}

/// The `reproduce serve` daemon loop: advances epochs continuously,
/// answering any queries that arrived between epochs, checkpointing every
/// `snap_every` epochs; once the schedule completes it keeps serving
/// queries until `input` closes or a `quit` line arrives. Shutdown —
/// `quit`, EOF, or schedule end with a closed input — always flushes a
/// final snapshot (when a path is configured) and prints the dataset
/// digest line, byte-comparable against a batch run.
///
/// `epochs` caps how many epochs to advance (`None` = the full schedule);
/// the cap makes scripted smoke runs and kill/resume drills cheap.
pub fn serve(
    scenario: &Scenario,
    cfg: ServiceConfig,
    epochs: Option<usize>,
    input: impl BufRead + Send + 'static,
    output: &mut impl Write,
) -> io::Result<ServeOutcome> {
    let resume_path =
        cfg.snapshot_path.clone().filter(|p| p.exists());
    let mut svc = match &resume_path {
        Some(p) => {
            let svc = Service::resume(scenario, cfg.clone(), p)?;
            writeln!(
                output,
                "service: resumed from {} at epoch {}/{} — replaying {} epoch(s) \
                 of lost work",
                p.display(),
                svc.next_epoch(),
                svc.n_epochs(),
                svc.n_epochs() - svc.next_epoch()
            )?;
            svc
        }
        None => Service::new(scenario, cfg.clone()),
    };
    let start_epoch = svc.next_epoch();
    let target = epochs
        .map(|e| (start_epoch + e).min(svc.n_epochs()))
        .unwrap_or_else(|| svc.n_epochs());
    writeln!(
        output,
        "service: {} slot(s) per epoch, schedule {}..{} of {} epoch(s), \
         checkpoint every {}",
        svc.profiles().len(),
        start_epoch,
        target,
        svc.n_epochs(),
        cfg.snap_every
    )?;

    // The input pump: a reader thread forwards lines over a channel so
    // epoch advancement never blocks on a quiet stdin.
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let mut input = input;
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match input.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if tx.send(line.trim_end_matches(['\n', '\r']).to_string()).is_err() {
                        break;
                    }
                }
            }
        }
    });

    // `quit` stops the schedule immediately; EOF only closes the query
    // channel — a scripted `serve --epochs N < batch.txt` still measures
    // exactly N epochs, so its digest is deterministic.
    let mut shutdown = false;
    let mut input_open = true;
    while svc.next_epoch() < target && !shutdown {
        // Serve everything queued between epochs.
        while input_open {
            match rx.try_recv() {
                Ok(line) if line.trim() == "quit" => {
                    shutdown = true;
                    break;
                }
                Ok(line) if line.trim().is_empty() => {}
                Ok(line) => {
                    let a = svc.answer(&line);
                    writeln!(output, "{a}")?;
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    input_open = false;
                }
            }
        }
        if shutdown {
            break;
        }
        svc.advance();
        if let Some(path) = &cfg.snapshot_path {
            if svc.next_epoch() % cfg.snap_every == 0 && svc.next_epoch() < target {
                svc.checkpoint(path)?;
            }
        }
        if cfg.cadence_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(cfg.cadence_ms));
        }
    }
    // Schedule done (or quitting): drain remaining queries until EOF/quit.
    if !shutdown {
        for line in rx.iter() {
            if line.trim() == "quit" {
                break;
            }
            if line.trim().is_empty() {
                continue;
            }
            let a = svc.answer(&line);
            writeln!(output, "{a}")?;
        }
    }
    // Graceful shutdown: final flush, then the digest line a batch run
    // would print — byte-comparable proof the daemon measured the same
    // dataset.
    if let Some(path) = &cfg.snapshot_path {
        let bytes = svc.checkpoint(path)?;
        writeln!(
            output,
            "service: final snapshot {} — {} epoch(s), {} bytes",
            path.display(),
            svc.next_epoch(),
            bytes
        )?;
    }
    let digest = svc.digest();
    writeln!(output, "long-term dataset digest: {digest:016x}")?;
    let exit = if svc.budget_exhausted() { ExitCode::Query } else { ExitCode::Ok };
    Ok(ServeOutcome {
        exit,
        digest,
        epochs_run: svc.next_epoch() - start_epoch,
        resumed_from: svc.resumed_from(),
    })
}

/// A batch baseline over the same mesh: the merged store, its digest, and
/// the per-slot profiles a one-shot campaign folds — what the service's
/// live state must match byte-for-byte. Used by the tests below and the
/// `service` bench section.
pub fn batch_baseline(
    scenario: &Scenario,
    profile: &FaultProfile,
    retry: &RetryPolicy,
) -> (TraceStore, u64, Vec<PairProfile>, CampaignReport) {
    let pairs = fabric::longterm_pairs(scenario);
    let camp_cfg = CampaignConfig::long_term(scenario.scale.days);
    let sink = PairProfileSink::for_config(&camp_cfg);
    let opts_of = scenario.long_term_opts_of();
    let (folded, report) = Campaign::new(camp_cfg)
        .faults(*profile)
        .retry(*retry)
        .run_traceroute_with(
            &scenario.net,
            &pairs,
            opts_of,
            |s, d, p| (TraceStore::new(), sink.init(s, d, p)),
            |(st, pr), rec| {
                // The profile fold keys on the sample instant, not the
                // sequence argument, so the batch side needs no epoch
                // bookkeeping.
                sink.fold(pr, 0, rec.t, rec.e2e_rtt_ms);
                st.push(&rec);
            },
        )
        .expect("in-memory campaign cannot fail");
    let mut merged = TraceStore::new();
    let mut profiles = Vec::with_capacity(folded.len());
    for (st, pr) in folded {
        merged.absorb(&st);
        profiles.push(pr);
    }
    let digest = store_digest(&merged);
    (merged, digest, profiles, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    fn tiny_scenario() -> Scenario {
        Scenario::build(Scale {
            seed: 11,
            clusters: 10,
            days: 3,
            pairs: 6,
            ping_pairs: 8,
            cong_pairs: 4,
        })
    }

    fn noisy() -> FaultProfile {
        FaultProfile {
            crash_rate: 0.02,
            drop_rate: 0.1,
            stuck_rate: 0.04,
            truncate_rate: 0.05,
            ..FaultProfile::default()
        }
    }

    fn cfg_with(profile: FaultProfile, path: Option<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            cadence_ms: 0,
            snap_every: 4,
            query_budget: 64,
            snapshot_path: path,
            profile,
            retry: RetryPolicy::default(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"));
        std::fs::create_dir_all(dir).expect("create target/tmp");
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn profile_lines(ps: &[PairProfile]) -> Vec<String> {
        ps.iter().map(PairProfile::to_line).collect()
    }

    #[test]
    fn service_run_is_byte_identical_to_batch() {
        for profile in [FaultProfile::default(), noisy()] {
            let scenario = tiny_scenario();
            let (batch_store, batch_digest, batch_profiles, batch_report) =
                batch_baseline(&scenario, &profile, &RetryPolicy::default());
            let mut svc = Service::new(&scenario, cfg_with(profile, None));
            while svc.advance() {}
            assert_eq!(svc.digest(), batch_digest, "dataset digest diverged");
            assert_eq!(
                format!("{:?}", svc.merged_store().iter().map(|v| v.to_record()).collect::<Vec<_>>()),
                format!("{:?}", batch_store.iter().map(|v| v.to_record()).collect::<Vec<_>>()),
                "record stream diverged"
            );
            assert_eq!(
                profile_lines(svc.profiles()),
                profile_lines(&batch_profiles),
                "profile states diverged"
            );
            assert_eq!(svc.report(), &batch_report, "merged report diverged");
            // The incremental timelines equal a batch analysis over the
            // merged store.
            let batch_tls =
                Analysis::new(&batch_store).timelines(&scenario.ip2asn);
            assert_eq!(svc.analysis().timelines(), &batch_tls[..]);
        }
    }

    #[test]
    fn kill_and_resume_recovers_byte_identically() {
        for profile in [FaultProfile::default(), noisy()] {
            let scenario = tiny_scenario();
            let path = tmp(&format!(
                "service-resume-{}.snap",
                if profile.is_quiet() { "quiet" } else { "noisy" }
            ));
            // The uninterrupted reference run.
            let mut reference = Service::new(&scenario, cfg_with(profile, None));
            while reference.advance() {}
            // The victim: checkpoint every 4 epochs, killed mid-interval
            // (epoch 6) — everything after the epoch-4 checkpoint is lost.
            let mut victim =
                Service::new(&scenario, cfg_with(profile, Some(path.clone())));
            for _ in 0..6 {
                victim.advance();
                if victim.next_epoch().is_multiple_of(4) {
                    victim.checkpoint(&path).unwrap();
                }
            }
            drop(victim); // the kill: no final flush
            let mut recovered =
                Service::resume(&scenario, cfg_with(profile, Some(path.clone())), &path)
                    .unwrap();
            assert_eq!(recovered.resumed_from(), Some(4), "must resume at the checkpoint");
            assert_eq!(
                recovered.n_epochs() - recovered.next_epoch(),
                reference.n_epochs() - 4,
                "lost-work accounting must be exact"
            );
            while recovered.advance() {}
            assert_eq!(recovered.digest(), reference.digest(), "digest diverged");
            assert_eq!(
                profile_lines(recovered.profiles()),
                profile_lines(reference.profiles()),
                "profiles diverged"
            );
            assert_eq!(recovered.report(), reference.report(), "report diverged");
            assert_eq!(
                recovered.analysis().timelines(),
                reference.analysis().timelines(),
                "timelines diverged"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn resume_rejects_mismatched_checkpoints() {
        let scenario = tiny_scenario();
        let path = tmp("service-bad.snap");
        // A snapshot with no service state line at all.
        snapshot::write_file(&path, &TraceStore::new(), &[]).unwrap();
        let err = Service::resume(&scenario, cfg_with(FaultProfile::default(), None), &path)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("SERVICE"), "got: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn queries_answer_from_pair_state() {
        let scenario = tiny_scenario();
        let mut svc = Service::new(&scenario, cfg_with(FaultProfile::default(), None));
        while svc.advance() {}
        let (src, dst) = fabric::longterm_pairs(&scenario)[0];
        let q = format!("pair {} {} v4", src.index(), dst.index());
        let a = svc.answer(&q);
        assert!(a.starts_with("ok {"), "got: {a}");
        assert!(a.contains("\"p50\":"), "got: {a}");
        assert!(!a.contains("\"p50\":null"), "a full quiet run must have RTTs: {a}");
        let a = svc.answer(&format!("changes {} {} v4", src.index(), dst.index()));
        assert!(a.starts_with("ok {") && a.contains("\"changes\":"), "got: {a}");
        let a = svc.answer(&format!("advice {} {}", src.index(), dst.index()));
        assert!(a.contains("\"prefer\":"), "got: {a}");
        let a = svc.answer(&format!("diurnal {} {} v6", src.index(), dst.index()));
        assert!(a.starts_with("ok {"), "got: {a}");
        let a = svc.answer("stats");
        assert!(a.contains("\"epochs\":24"), "3 days at 3h = 24 epochs: {a}");
        // Garbage is an error, not a panic.
        assert!(svc.answer("pair 0").starts_with("err"));
        assert!(svc.answer("bogus 1 2").starts_with("err"));
        assert!(svc.answer("pair 9999 9999 v4").starts_with("err"));
        assert!(svc.answer("pair 0 1 v9").starts_with("err"));
    }

    #[test]
    fn query_budget_refuses_then_flags_exit() {
        let scenario = tiny_scenario();
        let mut cfg = cfg_with(FaultProfile::default(), None);
        cfg.query_budget = 2;
        let mut svc = Service::new(&scenario, cfg);
        svc.advance();
        assert!(svc.answer("stats").starts_with("ok"));
        assert!(svc.answer("stats").starts_with("ok"));
        assert!(!svc.budget_exhausted() || svc.queries_answered() == 2);
        assert_eq!(svc.answer("stats"), "err budget exhausted");
        assert!(svc.budget_exhausted());
    }

    #[test]
    fn serve_loop_runs_scripted_sessions() {
        let scenario = tiny_scenario();
        let path = tmp("service-serve.snap");
        let cfg = cfg_with(FaultProfile::default(), Some(path.clone()));
        // EOF (no `quit`) closes the query channel but the capped schedule
        // still completes — scripted runs measure a deterministic epoch
        // count, so the digest line is byte-comparable.
        let mut out = Vec::new();
        let outcome =
            serve(&scenario, cfg.clone(), Some(5), &b"stats\n"[..], &mut out).unwrap();
        assert_eq!(outcome.exit, ExitCode::Ok);
        assert_eq!(outcome.epochs_run, 5, "EOF must not cut the capped schedule short");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ok {\"cmd\":\"stats\""), "query answered: {text}");
        assert!(text.contains("long-term dataset digest:"), "got: {text}");
        assert!(path.exists(), "graceful shutdown must flush a snapshot");
        // A second serve resumes from the flushed snapshot, finishes the
        // schedule, and lands on the uninterrupted run's digest; `quit`
        // (not EOF) stops a session immediately.
        let mut reference = Service::new(&scenario, cfg_with(FaultProfile::default(), None));
        while reference.advance() {}
        let mut out2 = Vec::new();
        let outcome2 = serve(&scenario, cfg.clone(), None, &b"stats\n"[..], &mut out2).unwrap();
        assert!(String::from_utf8(out2).unwrap().contains("service: resumed from"));
        assert_eq!(outcome2.resumed_from, Some(5));
        assert_eq!(outcome2.digest, reference.digest(), "resumed digest diverged");
        let mut out3 = Vec::new();
        let outcome3 = serve(&scenario, cfg, None, &b"quit\n"[..], &mut out3).unwrap();
        assert_eq!(outcome3.epochs_run, 0, "quit stops before the next epoch");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn service_knob_parsers_warn_and_default() {
        // The pure parser cores, exercised without process-env mutation.
        let (v, w) = s2s_types::env::parse_checked(
            "S2S_SERVICE_SNAP_EVERY",
            Some("0"),
            8usize,
            |&v| v >= 1,
            "an integer >= 1",
        );
        assert_eq!(v, 8);
        assert!(w.unwrap().contains("S2S_SERVICE_SNAP_EVERY"));
        let (v, w) = s2s_types::env::parse_checked(
            "S2S_SERVICE_QUERY_BUDGET",
            Some("abc"),
            4096usize,
            |&v| v >= 1,
            "an integer >= 1",
        );
        assert_eq!(v, 4096);
        assert!(w.is_some());
        let (v, w) = s2s_types::env::parse_checked(
            "S2S_SERVICE_CADENCE_MS",
            None,
            0u64,
            |_| true,
            "an integer",
        );
        assert_eq!(v, 0);
        assert!(w.is_none());
        // Every service knob is registered with the typo detector.
        for k in service_knobs() {
            assert!(
                s2s_probe::env::KNOWN_KNOBS.contains(&k.name),
                "{} not in KNOWN_KNOBS",
                k.name
            );
        }
    }
}
