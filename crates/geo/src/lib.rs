//! Geography substrate.
//!
//! The paper has ground truth on server locations and uses it to compute
//! `cRTT` — the round-trip time of light in free space over the great-circle
//! distance between two endpoints — and the *inflation* ratio RTT/cRTT
//! (Fig. 10b). This crate provides:
//!
//! * an embedded database of world cities spanning 70+ countries, weighted
//!   toward the paper's deployment mix (39% US; then AU, DE, IN, JP, CA),
//! * great-circle (haversine) distance,
//! * `cRTT` and fiber-propagation delay, and
//! * continent / transcontinental classification.

pub mod cities;

pub use cities::{City, Continent, CITIES};

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, km per millisecond.
pub const C_VACUUM_KM_PER_MS: f64 = 299.792458;

/// Effective propagation speed in optical fiber (refractive index ~1.468),
/// km per millisecond. Used by the delay model for link latencies.
pub const C_FIBER_KM_PER_MS: f64 = C_VACUUM_KM_PER_MS / 1.468;

/// Mean Earth radius in km.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A point on the Earth's surface.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating the coordinate ranges.
    ///
    /// # Panics
    /// Panics when latitude is outside [-90, 90] or longitude outside
    /// [-180, 180].
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        assert!((-180.0..=180.0).contains(&lon), "longitude {lon} out of range");
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in km (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2)
            + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// Round-trip time of light in free space between two points, in ms —
/// the paper's `cRTT` (Section 6).
pub fn c_rtt_ms(a: &GeoPoint, b: &GeoPoint) -> f64 {
    2.0 * a.distance_km(b) / C_VACUUM_KM_PER_MS
}

/// One-way propagation delay through fiber over the great-circle distance,
/// in ms. Real fiber paths are longer than great circles; the topology layer
/// adds a path-stretch factor on top of this.
pub fn fiber_delay_ms(a: &GeoPoint, b: &GeoPoint) -> f64 {
    a.distance_km(b) / C_FIBER_KM_PER_MS
}

/// Whether a path between two cities necessarily crosses between continents
/// (used by Fig. 9 / Fig. 10b breakdowns).
pub fn is_transcontinental(a: &City, b: &City) -> bool {
    a.continent != b.continent
}

/// Whether both cities are in the United States (the paper's `US<->US`
/// breakdowns in Fig. 9 and Fig. 10b).
pub fn is_us_us(a: &City, b: &City) -> bool {
    a.country == "US" && b.country == "US"
}

/// Looks up a city by exact name; intended for examples and tests.
pub fn city_by_name(name: &str) -> Option<&'static City> {
    CITIES.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn city(name: &str) -> &'static City {
        city_by_name(name).unwrap_or_else(|| panic!("city {name} missing"))
    }

    #[test]
    fn known_distances_are_close() {
        // New York <-> London is ~5570 km.
        let d = city("New York").point().distance_km(&city("London").point());
        assert!((5500.0..5650.0).contains(&d), "NY-London = {d} km");
        // Hong Kong <-> Osaka is ~2480 km (the paper's Fig. 1 pair).
        let d = city("Hong Kong").point().distance_km(&city("Osaka").point());
        assert!((2380.0..2560.0).contains(&d), "HK-Osaka = {d} km");
    }

    #[test]
    fn crtt_of_fig1_pair() {
        // cRTT of HK-Osaka: ~2480 km * 2 / c ~ 16.5 ms. The paper's observed
        // baselines (~50 ms) then imply inflation ~3, matching Fig. 10b.
        let c = c_rtt_ms(&city("Hong Kong").point(), &city("Osaka").point());
        assert!((15.0..18.0).contains(&c), "cRTT = {c}");
    }

    #[test]
    fn fiber_is_slower_than_vacuum() {
        let (a, b) = (city("Paris").point(), city("Tokyo").point());
        assert!(fiber_delay_ms(&a, &b) > c_rtt_ms(&a, &b) / 2.0);
    }

    #[test]
    fn zero_distance() {
        let p = GeoPoint::new(48.8566, 2.3522);
        assert_eq!(p.distance_km(&p), 0.0);
        assert_eq!(c_rtt_ms(&p, &p), 0.0);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "antipodal = {d}, expected {half}");
    }

    #[test]
    fn continental_classification() {
        assert!(is_transcontinental(city("New York"), city("London")));
        assert!(!is_transcontinental(city("New York"), city("Los Angeles")));
        assert!(is_us_us(city("New York"), city("Seattle")));
        assert!(!is_us_us(city("New York"), city("Toronto")));
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn invalid_latitude_panics() {
        GeoPoint::new(91.0, 0.0);
    }

    proptest! {
        #[test]
        fn prop_distance_is_symmetric(
            lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
            lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
        ) {
            let a = GeoPoint::new(lat1, lon1);
            let b = GeoPoint::new(lat2, lon2);
            let d1 = a.distance_km(&b);
            let d2 = b.distance_km(&a);
            prop_assert!((d1 - d2).abs() < 1e-6);
        }

        #[test]
        fn prop_distance_bounded_by_half_circumference(
            lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
            lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
        ) {
            let d = GeoPoint::new(lat1, lon1).distance_km(&GeoPoint::new(lat2, lon2));
            prop_assert!(d >= 0.0);
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
        }

        #[test]
        fn prop_triangle_inequality(
            lat1 in -80.0f64..80.0, lon1 in -170.0f64..170.0,
            lat2 in -80.0f64..80.0, lon2 in -170.0f64..170.0,
            lat3 in -80.0f64..80.0, lon3 in -170.0f64..170.0,
        ) {
            let a = GeoPoint::new(lat1, lon1);
            let b = GeoPoint::new(lat2, lon2);
            let c = GeoPoint::new(lat3, lon3);
            prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
        }
    }
}
