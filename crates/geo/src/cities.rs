//! Embedded world-city database.
//!
//! The CDN in the paper deploys clusters in 2000+ locations across 70+
//! countries; the long-term mesh uses ~600 of them with 39% in the US and
//! AU/DE/IN/JP/CA as the next five countries. This table provides candidate
//! locations with the same skew: many US metros, good coverage of the
//! paper's top-six countries, and at least one city in 70+ countries.
//!
//! Coordinates are approximate city centers; only great-circle distances at
//! hundreds-of-km precision matter to the models.

use crate::GeoPoint;
use serde::{Deserialize, Serialize};

/// Continents, for transcontinental path classification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Continent {
    /// North and Central America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Africa.
    Africa,
    /// Asia (incl. the Middle East).
    Asia,
    /// Australia, New Zealand, Pacific islands.
    Oceania,
}

/// One candidate deployment location.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct City {
    /// City name (unique within the table).
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// Continent.
    pub continent: Continent,
    /// Latitude, degrees north.
    pub lat: f64,
    /// Longitude, degrees east.
    pub lon: f64,
}

impl City {
    /// The city's coordinates as a [`GeoPoint`].
    pub fn point(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

macro_rules! city {
    ($name:literal, $cc:literal, $cont:ident, $lat:literal, $lon:literal) => {
        City {
            name: $name,
            country: $cc,
            continent: Continent::$cont,
            lat: $lat,
            lon: $lon,
        }
    };
}

/// All candidate deployment cities. US metros first (the generator draws the
/// US share from the front of the table), then the paper's other top-five
/// countries, then broad world coverage.
pub const CITIES: &[City] = &[
    // --- United States (39% of the paper's servers) ---
    city!("New York", "US", NorthAmerica, 40.7128, -74.0060),
    city!("Los Angeles", "US", NorthAmerica, 34.0522, -118.2437),
    city!("Chicago", "US", NorthAmerica, 41.8781, -87.6298),
    city!("Dallas", "US", NorthAmerica, 32.7767, -96.7970),
    city!("Ashburn", "US", NorthAmerica, 39.0438, -77.4874),
    city!("San Jose", "US", NorthAmerica, 37.3382, -121.8863),
    city!("Seattle", "US", NorthAmerica, 47.6062, -122.3321),
    city!("Miami", "US", NorthAmerica, 25.7617, -80.1918),
    city!("Atlanta", "US", NorthAmerica, 33.7490, -84.3880),
    city!("Denver", "US", NorthAmerica, 39.7392, -104.9903),
    city!("Houston", "US", NorthAmerica, 29.7604, -95.3698),
    city!("Phoenix", "US", NorthAmerica, 33.4484, -112.0740),
    city!("Boston", "US", NorthAmerica, 42.3601, -71.0589),
    city!("Philadelphia", "US", NorthAmerica, 39.9526, -75.1652),
    city!("Minneapolis", "US", NorthAmerica, 44.9778, -93.2650),
    city!("Kansas City", "US", NorthAmerica, 39.0997, -94.5786),
    city!("Salt Lake City", "US", NorthAmerica, 40.7608, -111.8910),
    city!("Portland", "US", NorthAmerica, 45.5152, -122.6784),
    city!("Las Vegas", "US", NorthAmerica, 36.1699, -115.1398),
    city!("St. Louis", "US", NorthAmerica, 38.6270, -90.1994),
    city!("Detroit", "US", NorthAmerica, 42.3314, -83.0458),
    city!("Charlotte", "US", NorthAmerica, 35.2271, -80.8431),
    city!("Nashville", "US", NorthAmerica, 36.1627, -86.7816),
    city!("Pittsburgh", "US", NorthAmerica, 40.4406, -79.9959),
    city!("Columbus", "US", NorthAmerica, 39.9612, -82.9988),
    city!("Indianapolis", "US", NorthAmerica, 39.7684, -86.1581),
    city!("San Diego", "US", NorthAmerica, 32.7157, -117.1611),
    city!("Tampa", "US", NorthAmerica, 27.9506, -82.4572),
    city!("Sacramento", "US", NorthAmerica, 38.5816, -121.4944),
    city!("Newark", "US", NorthAmerica, 40.7357, -74.1724),
    city!("Austin", "US", NorthAmerica, 30.2672, -97.7431),
    city!("Raleigh", "US", NorthAmerica, 35.7796, -78.6382),
    city!("Cleveland", "US", NorthAmerica, 41.4993, -81.6944),
    city!("Cincinnati", "US", NorthAmerica, 39.1031, -84.5120),
    city!("Jacksonville", "US", NorthAmerica, 30.3322, -81.6557),
    city!("Memphis", "US", NorthAmerica, 35.1495, -90.0490),
    city!("Oklahoma City", "US", NorthAmerica, 35.4676, -97.5164),
    city!("Albuquerque", "US", NorthAmerica, 35.0844, -106.6504),
    city!("Milwaukee", "US", NorthAmerica, 43.0389, -87.9065),
    city!("Honolulu", "US", NorthAmerica, 21.3069, -157.8583),
    // --- Australia ---
    city!("Sydney", "AU", Oceania, -33.8688, 151.2093),
    city!("Melbourne", "AU", Oceania, -37.8136, 144.9631),
    city!("Brisbane", "AU", Oceania, -27.4698, 153.0251),
    city!("Perth", "AU", Oceania, -31.9505, 115.8605),
    city!("Adelaide", "AU", Oceania, -34.9285, 138.6007),
    // --- Germany ---
    city!("Frankfurt", "DE", Europe, 50.1109, 8.6821),
    city!("Berlin", "DE", Europe, 52.5200, 13.4050),
    city!("Munich", "DE", Europe, 48.1351, 11.5820),
    city!("Hamburg", "DE", Europe, 53.5511, 9.9937),
    city!("Dusseldorf", "DE", Europe, 51.2277, 6.7735),
    // --- India ---
    city!("Mumbai", "IN", Asia, 19.0760, 72.8777),
    city!("Delhi", "IN", Asia, 28.7041, 77.1025),
    city!("Chennai", "IN", Asia, 13.0827, 80.2707),
    city!("Bangalore", "IN", Asia, 12.9716, 77.5946),
    city!("Hyderabad", "IN", Asia, 17.3850, 78.4867),
    // --- Japan ---
    city!("Tokyo", "JP", Asia, 35.6762, 139.6503),
    city!("Osaka", "JP", Asia, 34.6937, 135.5023),
    city!("Nagoya", "JP", Asia, 35.1815, 136.9066),
    city!("Fukuoka", "JP", Asia, 33.5904, 130.4017),
    // --- Canada ---
    city!("Toronto", "CA", NorthAmerica, 43.6532, -79.3832),
    city!("Montreal", "CA", NorthAmerica, 45.5017, -73.5673),
    city!("Vancouver", "CA", NorthAmerica, 49.2827, -123.1207),
    city!("Calgary", "CA", NorthAmerica, 51.0447, -114.0719),
    // --- Rest of Europe ---
    city!("London", "GB", Europe, 51.5074, -0.1278),
    city!("Manchester", "GB", Europe, 53.4808, -2.2426),
    city!("Paris", "FR", Europe, 48.8566, 2.3522),
    city!("Marseille", "FR", Europe, 43.2965, 5.3698),
    city!("Amsterdam", "NL", Europe, 52.3676, 4.9041),
    city!("Brussels", "BE", Europe, 50.8503, 4.3517),
    city!("Madrid", "ES", Europe, 40.4168, -3.7038),
    city!("Barcelona", "ES", Europe, 41.3874, 2.1686),
    city!("Milan", "IT", Europe, 45.4642, 9.1900),
    city!("Rome", "IT", Europe, 41.9028, 12.4964),
    city!("Zurich", "CH", Europe, 47.3769, 8.5417),
    city!("Vienna", "AT", Europe, 48.2082, 16.3738),
    city!("Stockholm", "SE", Europe, 59.3293, 18.0686),
    city!("Copenhagen", "DK", Europe, 55.6761, 12.5683),
    city!("Oslo", "NO", Europe, 59.9139, 10.7522),
    city!("Helsinki", "FI", Europe, 60.1699, 24.9384),
    city!("Warsaw", "PL", Europe, 52.2297, 21.0122),
    city!("Prague", "CZ", Europe, 50.0755, 14.4378),
    city!("Budapest", "HU", Europe, 47.4979, 19.0402),
    city!("Bucharest", "RO", Europe, 44.4268, 26.1025),
    city!("Sofia", "BG", Europe, 42.6977, 23.3219),
    city!("Athens", "GR", Europe, 37.9838, 23.7275),
    city!("Lisbon", "PT", Europe, 38.7223, -9.1393),
    city!("Dublin", "IE", Europe, 53.3498, -6.2603),
    city!("Kyiv", "UA", Europe, 50.4501, 30.5234),
    city!("Moscow", "RU", Europe, 55.7558, 37.6173),
    city!("Istanbul", "TR", Europe, 41.0082, 28.9784),
    city!("Belgrade", "RS", Europe, 44.7866, 20.4489),
    city!("Zagreb", "HR", Europe, 45.8150, 15.9819),
    city!("Bratislava", "SK", Europe, 48.1486, 17.1077),
    city!("Vilnius", "LT", Europe, 54.6872, 25.2797),
    city!("Riga", "LV", Europe, 56.9496, 24.1052),
    city!("Tallinn", "EE", Europe, 59.4370, 24.7536),
    city!("Luxembourg", "LU", Europe, 49.6116, 6.1319),
    city!("Reykjavik", "IS", Europe, 64.1466, -21.9426),
    // --- Rest of Asia & Middle East ---
    city!("Hong Kong", "HK", Asia, 22.3193, 114.1694),
    city!("Singapore", "SG", Asia, 1.3521, 103.8198),
    city!("Seoul", "KR", Asia, 37.5665, 126.9780),
    city!("Taipei", "TW", Asia, 25.0330, 121.5654),
    city!("Shanghai", "CN", Asia, 31.2304, 121.4737),
    city!("Beijing", "CN", Asia, 39.9042, 116.4074),
    city!("Kuala Lumpur", "MY", Asia, 3.1390, 101.6869),
    city!("Bangkok", "TH", Asia, 13.7563, 100.5018),
    city!("Jakarta", "ID", Asia, -6.2088, 106.8456),
    city!("Manila", "PH", Asia, 14.5995, 120.9842),
    city!("Hanoi", "VN", Asia, 21.0278, 105.8342),
    city!("Dubai", "AE", Asia, 25.2048, 55.2708),
    city!("Doha", "QA", Asia, 25.2854, 51.5310),
    city!("Riyadh", "SA", Asia, 24.7136, 46.6753),
    city!("Tel Aviv", "IL", Asia, 32.0853, 34.7818),
    city!("Karachi", "PK", Asia, 24.8607, 67.0011),
    city!("Dhaka", "BD", Asia, 23.8103, 90.4125),
    city!("Colombo", "LK", Asia, 6.9271, 79.8612),
    city!("Almaty", "KZ", Asia, 43.2220, 76.8512),
    city!("Amman", "JO", Asia, 31.9454, 35.9284),
    city!("Kuwait City", "KW", Asia, 29.3759, 47.9774),
    city!("Manama", "BH", Asia, 26.2285, 50.5860),
    // --- Oceania (non-AU) ---
    city!("Auckland", "NZ", Oceania, -36.8509, 174.7645),
    city!("Wellington", "NZ", Oceania, -41.2924, 174.7787),
    city!("Suva", "FJ", Oceania, -18.1248, 178.4501),
    // --- South America ---
    city!("Sao Paulo", "BR", SouthAmerica, -23.5558, -46.6396),
    city!("Rio de Janeiro", "BR", SouthAmerica, -22.9068, -43.1729),
    city!("Buenos Aires", "AR", SouthAmerica, -34.6037, -58.3816),
    city!("Santiago", "CL", SouthAmerica, -33.4489, -70.6693),
    city!("Bogota", "CO", SouthAmerica, 4.7110, -74.0721),
    city!("Lima", "PE", SouthAmerica, -12.0464, -77.0428),
    city!("Quito", "EC", SouthAmerica, -0.1807, -78.4678),
    city!("Montevideo", "UY", SouthAmerica, -34.9011, -56.1645),
    city!("Caracas", "VE", SouthAmerica, 10.4806, -66.9036),
    city!("Asuncion", "PY", SouthAmerica, -25.2637, -57.5759),
    // --- Central America & Caribbean ---
    city!("Mexico City", "MX", NorthAmerica, 19.4326, -99.1332),
    city!("Guadalajara", "MX", NorthAmerica, 20.6597, -103.3496),
    city!("Panama City", "PA", NorthAmerica, 8.9824, -79.5199),
    city!("San Jose CR", "CR", NorthAmerica, 9.9281, -84.0907),
    city!("Guatemala City", "GT", NorthAmerica, 14.6349, -90.5069),
    city!("Santo Domingo", "DO", NorthAmerica, 18.4861, -69.9312),
    city!("Kingston", "JM", NorthAmerica, 17.9712, -76.7936),
    city!("San Juan", "PR", NorthAmerica, 18.4655, -66.1057),
    // --- Africa ---
    city!("Johannesburg", "ZA", Africa, -26.2041, 28.0473),
    city!("Cape Town", "ZA", Africa, -33.9249, 18.4241),
    city!("Cairo", "EG", Africa, 30.0444, 31.2357),
    city!("Lagos", "NG", Africa, 6.5244, 3.3792),
    city!("Nairobi", "KE", Africa, -1.2921, 36.8219),
    city!("Casablanca", "MA", Africa, 33.5731, -7.5898),
    city!("Tunis", "TN", Africa, 36.8065, 10.1815),
    city!("Accra", "GH", Africa, 5.6037, -0.1870),
    city!("Dakar", "SN", Africa, 14.7167, -17.4677),
    city!("Dar es Salaam", "TZ", Africa, -6.7924, 39.2083),
    city!("Kampala", "UG", Africa, 0.3476, 32.5825),
    city!("Luanda", "AO", Africa, -8.8390, 13.2894),
    city!("Algiers", "DZ", Africa, 36.7538, 3.0588),
    city!("Addis Ababa", "ET", Africa, 9.0250, 38.7469),
    city!("Port Louis", "MU", Africa, -20.1609, 57.5012),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique() {
        let mut seen = HashSet::new();
        for c in CITIES {
            assert!(seen.insert(c.name), "duplicate city name {}", c.name);
        }
    }

    #[test]
    fn coordinates_are_valid() {
        for c in CITIES {
            assert!((-90.0..=90.0).contains(&c.lat), "{}: lat {}", c.name, c.lat);
            assert!((-180.0..=180.0).contains(&c.lon), "{}: lon {}", c.name, c.lon);
            // point() panics on invalid coords; exercise it.
            let _ = c.point();
        }
    }

    #[test]
    fn covers_seventy_countries() {
        let countries: HashSet<_> = CITIES.iter().map(|c| c.country).collect();
        assert!(countries.len() >= 70, "only {} countries", countries.len());
    }

    #[test]
    fn top_countries_have_depth() {
        let count = |cc: &str| CITIES.iter().filter(|c| c.country == cc).count();
        assert!(count("US") >= 30, "US cities: {}", count("US"));
        for cc in ["AU", "DE", "IN", "JP", "CA"] {
            assert!(count(cc) >= 4, "{cc} cities: {}", count(cc));
        }
    }

    #[test]
    fn us_cities_lead_the_table() {
        // The generator relies on the US block being first.
        assert!(CITIES[..40].iter().all(|c| c.country == "US"));
    }

    #[test]
    fn every_continent_is_represented() {
        let conts: HashSet<_> =
            CITIES.iter().map(|c| format!("{:?}", c.continent)).collect();
        assert_eq!(conts.len(), 6);
    }
}
