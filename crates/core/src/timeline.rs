//! Trace timelines.
//!
//! "We refer to the set of all traceroutes from one server to another
//! (representing a time series) as a *trace timeline*" (§4.1). A timeline
//! interns the distinct AS paths it observes and stores, per sample
//! instant, which path was seen and the end-to-end RTT. This compact form
//! (a couple of bytes per sample) is what lets a 16-month full-mesh
//! campaign fit in memory.
//!
//! Per the paper, only *completed* traceroutes enter a timeline, and
//! traceroutes whose AS path loops are excluded from path analyses (their
//! RTTs are still dropped — the paper removes the whole traceroute).

use crate::annotate::{annotate, Annotated, CompletenessCounts};
use s2s_bgp::Ip2AsnMap;
use s2s_probe::TracerouteRecord;
use s2s_types::{AsPath, ClusterId, Coverage, Protocol, SimTime};

/// One sample of a timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// When the traceroute ran.
    pub t: SimTime,
    /// Index into [`TraceTimeline::paths`]; `None` when the traceroute was
    /// incomplete or loop-filtered.
    pub path: Option<u16>,
    /// End-to-end RTT, ms.
    pub rtt_ms: Option<f32>,
}

/// The AS-path/RTT time series of one (source, destination, protocol).
///
/// `PartialEq` compares every field — it is what the columnar-vs-legacy
/// equivalence tests assert on.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceTimeline {
    /// Source vantage point.
    pub src: ClusterId,
    /// Destination vantage point.
    pub dst: ClusterId,
    /// Protocol.
    pub proto: Protocol,
    /// Distinct AS paths observed, in first-seen order.
    pub paths: Vec<AsPath>,
    /// Samples in time order.
    pub samples: Vec<Sample>,
    /// Table-1 tallies over everything that was offered to this timeline.
    pub counts: CompletenessCounts,
}

impl TraceTimeline {
    /// Number of usable samples (with a path).
    pub fn usable_samples(&self) -> usize {
        self.samples.iter().filter(|s| s.path.is_some()).count()
    }

    /// The distinct AS paths count — Fig. 2a's X value.
    pub fn unique_paths(&self) -> usize {
        self.paths.len()
    }

    /// How much of the offered schedule produced a usable sample. A
    /// degraded measurement plane (crashed agents, lost probes) still folds
    /// one sample per scheduled instant — it's just pathless — so the
    /// sample count is the offered schedule and the usable count is what
    /// survived.
    pub fn coverage(&self) -> Coverage {
        Coverage::new(self.usable_samples(), self.samples.len())
    }

    /// Per-path sample counts (lifetime in samples).
    pub fn path_sample_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.paths.len()];
        for s in &self.samples {
            if let Some(p) = s.path {
                counts[p as usize] += 1;
            }
        }
        counts
    }

    /// The RTTs observed while on each path.
    pub fn rtts_by_path(&self) -> Vec<Vec<f64>> {
        let mut by_path = vec![Vec::new(); self.paths.len()];
        for s in &self.samples {
            if let (Some(p), Some(r)) = (s.path, s.rtt_ms) {
                by_path[p as usize].push(f64::from(r));
            }
        }
        by_path
    }

    /// The path observed at each usable sample, in time order.
    pub fn path_sequence(&self) -> Vec<u16> {
        self.samples.iter().filter_map(|s| s.path).collect()
    }
}

/// Streaming builder: the accumulator used with
/// `s2s_probe::Campaign::run_traceroute`.
pub struct TimelineBuilder<'m> {
    timeline: TraceTimeline,
    map: &'m Ip2AsnMap,
}

impl<'m> TimelineBuilder<'m> {
    /// Starts a timeline for one (pair, protocol).
    pub fn new(src: ClusterId, dst: ClusterId, proto: Protocol, map: &'m Ip2AsnMap) -> Self {
        TimelineBuilder {
            timeline: TraceTimeline {
                src,
                dst,
                proto,
                paths: Vec::new(),
                samples: Vec::new(),
                counts: CompletenessCounts::default(),
            },
            map,
        }
    }

    /// Folds one traceroute in.
    pub fn push(&mut self, rec: TracerouteRecord) {
        let ann: Annotated = annotate(&rec, self.map);
        self.timeline.counts.add(&rec, &ann);
        let path = if rec.reached && !ann.has_loop {
            Some(self.intern(ann.as_path))
        } else {
            None
        };
        self.timeline.samples.push(Sample {
            t: rec.t,
            path,
            rtt_ms: rec.e2e_rtt_ms.filter(|_| path.is_some()).map(|r| r as f32),
        });
    }

    fn intern(&mut self, path: AsPath) -> u16 {
        if let Some(i) = self.timeline.paths.iter().position(|p| *p == path) {
            return i as u16;
        }
        assert!(
            self.timeline.paths.len() < u16::MAX as usize,
            "more than 65k distinct AS paths on one timeline"
        );
        self.timeline.paths.push(path);
        (self.timeline.paths.len() - 1) as u16
    }

    /// Finishes the timeline.
    pub fn finish(self) -> TraceTimeline {
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_probe::HopObs;
    use s2s_types::{Asn, IpNet, Ipv4Net};
    use std::net::Ipv4Addr;

    fn map() -> Ip2AsnMap {
        let anns = vec![
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 1, 0, 0), 16)), Asn::new(100)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 2, 0, 0), 16)), Asn::new(200)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 3, 0, 0), 16)), Asn::new(300)),
        ];
        Ip2AsnMap::from_announcements(&anns)
    }

    fn rec(t_min: u32, via: &str, rtt: f64) -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            t: SimTime::from_minutes(t_min),
            hops: vec![
                HopObs { addr: Some("10.1.0.1".parse().unwrap()), rtt_ms: Some(1.0) },
                HopObs { addr: Some(via.parse().unwrap()), rtt_ms: Some(5.0) },
            ],
            reached: true,
            e2e_rtt_ms: Some(rtt),
            src_addr: Some("10.1.0.200".parse().unwrap()),
            dst_addr: Some("10.3.0.9".parse().unwrap()),
        }
    }

    #[test]
    fn interning_reuses_paths() {
        let m = map();
        let mut b = TimelineBuilder::new(ClusterId::new(0), ClusterId::new(1), Protocol::V4, &m);
        b.push(rec(0, "10.2.0.1", 50.0));
        b.push(rec(180, "10.2.0.2", 51.0)); // same AS path, different router
        b.push(rec(360, "10.1.0.9", 80.0)); // different AS path (no AS200)
        let tl = b.finish();
        assert_eq!(tl.unique_paths(), 2);
        assert_eq!(tl.samples.len(), 3);
        assert_eq!(tl.path_sequence(), vec![0, 0, 1]);
        assert_eq!(tl.path_sample_counts(), vec![2, 1]);
    }

    #[test]
    fn rtts_group_by_path() {
        let m = map();
        let mut b = TimelineBuilder::new(ClusterId::new(0), ClusterId::new(1), Protocol::V4, &m);
        b.push(rec(0, "10.2.0.1", 50.0));
        b.push(rec(180, "10.2.0.1", 52.0));
        b.push(rec(360, "10.1.0.9", 80.0));
        let tl = b.finish();
        let by_path = tl.rtts_by_path();
        assert_eq!(by_path[0], vec![50.0, 52.0]);
        assert_eq!(by_path[1], vec![80.0]);
    }

    #[test]
    fn incomplete_and_looping_traces_yield_pathless_samples() {
        let m = map();
        let mut b = TimelineBuilder::new(ClusterId::new(0), ClusterId::new(1), Protocol::V4, &m);
        let mut unreached = rec(0, "10.2.0.1", 50.0);
        unreached.reached = false;
        unreached.e2e_rtt_ms = None;
        b.push(unreached);
        // A loop: 100 -> 200 -> 100 -> dest 300.
        let mut looping = rec(180, "10.2.0.1", 55.0);
        looping.hops.push(HopObs {
            addr: Some("10.1.0.3".parse().unwrap()),
            rtt_ms: Some(9.0),
        });
        b.push(looping);
        b.push(rec(360, "10.2.0.1", 50.0));
        let tl = b.finish();
        assert_eq!(tl.samples.len(), 3);
        assert_eq!(tl.usable_samples(), 1);
        assert_eq!(tl.unique_paths(), 1);
        assert_eq!(tl.counts.incomplete, 1);
        assert_eq!(tl.counts.loops, 1);
        // Pathless samples carry no RTT into path analyses.
        assert!(tl.samples[0].rtt_ms.is_none());
        assert!(tl.samples[1].rtt_ms.is_none());
    }

    #[test]
    fn empty_timeline() {
        let m = map();
        let tl = TimelineBuilder::new(ClusterId::new(0), ClusterId::new(1), Protocol::V6, &m)
            .finish();
        assert_eq!(tl.unique_paths(), 0);
        assert_eq!(tl.usable_samples(), 0);
        assert!(tl.path_sample_counts().is_empty());
    }
}
