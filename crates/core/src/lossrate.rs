//! Packet-loss analysis — the paper's §8 future-work item ("We encourage
//! follow-up work focusing on other characteristics, viz., available
//! bandwidth, packet loss").
//!
//! Congested queues drop probes as well as delaying them, so a pair whose
//! RTT oscillates daily should also lose more probes in its busy hours.
//! This module measures exactly that from ping timelines: per-hour-of-day
//! loss fractions and the busy/quiet loss ratio, plus a diurnal-loss
//! detector mirroring the RTT-based one.

use s2s_probe::PingTimeline;
use s2s_types::MINUTES_PER_DAY;

/// Per-pair loss statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct LossStats {
    /// Overall fraction of lost samples.
    pub loss_fraction: f64,
    /// Loss fraction per hour-of-day (UTC), 24 bins.
    pub hourly_loss: Vec<f64>,
    /// Loss in the worst 4-hour window divided by loss in the best 4-hour
    /// window (clamped: windows with zero loss use half a sample).
    pub busy_quiet_ratio: f64,
}

/// Computes loss statistics for one ping timeline. `None` when the
/// timeline has fewer than one day of samples.
pub fn loss_stats(tl: &PingTimeline) -> Option<LossStats> {
    let per_day = (MINUTES_PER_DAY / tl.interval.minutes()) as usize;
    if tl.rtts.len() < per_day {
        return None;
    }
    let mut lost = [0usize; 24];
    let mut total = vec![0usize; 24];
    let mut lost_all = 0usize;
    for (i, r) in tl.rtts.iter().enumerate() {
        let t = tl.start + s2s_types::SimDuration::from_minutes(
            i as u32 * tl.interval.minutes(),
        );
        let hour = (t.minute_of_day() / 60) as usize;
        total[hour] += 1;
        if r.is_nan() {
            lost[hour] += 1;
            lost_all += 1;
        }
    }
    let hourly_loss: Vec<f64> = lost
        .iter()
        .zip(&total)
        .map(|(&l, &t)| if t == 0 { 0.0 } else { l as f64 / t as f64 })
        .collect();
    // Best/worst contiguous 4-hour windows (wrapping).
    let window = |start: usize| -> (f64, f64) {
        let mut l = 0.0;
        let mut t = 0.0;
        for off in 0..4 {
            let h = (start + off) % 24;
            l += lost[h] as f64;
            t += total[h] as f64;
        }
        (l, t)
    };
    let mut worst: f64 = 0.0;
    let mut best = f64::INFINITY;
    for start in 0..24 {
        let (l, t) = window(start);
        if t == 0.0 {
            continue;
        }
        let f = l / t;
        worst = worst.max(f);
        best = best.min(f);
    }
    let n_all = tl.rtts.len() as f64;
    Some(LossStats {
        loss_fraction: lost_all as f64 / n_all,
        hourly_loss,
        // Half-sample floor keeps the ratio finite on clean pairs.
        busy_quiet_ratio: (worst + 0.5 / n_all) / (best + 0.5 / n_all),
    })
}

/// Whether a pair shows *diurnal loss*: an elevated busy/quiet ratio on top
/// of a non-trivial loss floor. Pairs with almost no loss at all never
/// qualify, however lopsided their (tiny) windows look.
pub fn has_diurnal_loss(stats: &LossStats, min_loss: f64, min_ratio: f64) -> bool {
    stats.loss_fraction >= min_loss && stats.busy_quiet_ratio >= min_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

    fn timeline(rtts: Vec<f32>) -> PingTimeline {
        PingTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            start: SimTime::T0,
            interval: SimDuration::from_minutes(15),
            rtts,
        }
    }

    /// A week of 15-minute samples losing probes only in hours 19–22.
    fn busy_hour_loss_series() -> Vec<f32> {
        (0..672)
            .map(|i| {
                let minute = (i * 15) % 1440;
                let hour = minute / 60;
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if (19..23).contains(&hour) && u < 0.3 {
                    f32::NAN
                } else {
                    50.0
                }
            })
            .collect()
    }

    #[test]
    fn busy_hour_loss_is_detected() {
        let tl = timeline(busy_hour_loss_series());
        let s = loss_stats(&tl).unwrap();
        assert!(s.loss_fraction > 0.02, "loss {}", s.loss_fraction);
        assert!(s.busy_quiet_ratio > 5.0, "ratio {}", s.busy_quiet_ratio);
        assert!(has_diurnal_loss(&s, 0.01, 3.0));
        // The hourly profile peaks in the evening.
        let evening: f64 = s.hourly_loss[19..23].iter().sum();
        let morning: f64 = s.hourly_loss[5..9].iter().sum();
        assert!(evening > morning);
    }

    #[test]
    fn uniform_loss_has_flat_ratio() {
        let rtts: Vec<f32> = (0..672)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < 0.05 {
                    f32::NAN
                } else {
                    50.0
                }
            })
            .collect();
        let s = loss_stats(&timeline(rtts)).unwrap();
        assert!((0.02..0.09).contains(&s.loss_fraction));
        assert!(s.busy_quiet_ratio < 20.0, "ratio {}", s.busy_quiet_ratio);
    }

    #[test]
    fn clean_pair_never_diurnal() {
        let s = loss_stats(&timeline(vec![50.0; 672])).unwrap();
        assert_eq!(s.loss_fraction, 0.0);
        assert!(!has_diurnal_loss(&s, 0.01, 2.0));
    }

    #[test]
    fn short_timeline_is_none() {
        assert!(loss_stats(&timeline(vec![50.0; 10])).is_none());
    }

    #[test]
    fn hourly_bins_cover_the_day() {
        let s = loss_stats(&timeline(busy_hour_loss_series())).unwrap();
        assert_eq!(s.hourly_loss.len(), 24);
        assert!(s.hourly_loss.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }
}
