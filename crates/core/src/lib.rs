//! The analysis pipeline of *"A Server-to-Server View of the Internet"*
//! (CoNEXT 2015).
//!
//! This crate is the paper's primary contribution, reimplemented as a
//! reusable library. It consumes plain measurement records
//! ([`s2s_probe::TracerouteRecord`] / ping timelines) plus BGP-derived data
//! ([`s2s_bgp::Ip2AsnMap`], [`s2s_bgp::AsRelStore`]) — never the simulator —
//! so it runs unchanged on real traceroute corpora.
//!
//! The crate's front door is [`Analysis`]: wrap a data source (a
//! [`s2s_probe::TraceStore`], a reopened or *streamed* snapshot
//! ([`s2s_probe::SnapshotReader`], a [`s2s_probe::ShardDir`] of per-shard
//! files), built timelines, or streamed
//! [`s2s_probe::PairProfile`]s), set policy (`.threads(n)`,
//! `.observe(reg)`, `.checked(floor)`), then call an analysis method —
//! mirroring how [`s2s_probe::Campaign`] fronts the measurement plane.
//!
//! Pipeline stages, in paper order:
//!
//! * [`mod@analysis`] — the [`Analysis`] builder front door,
//! * [`annotate`] — hop-IP → ASN mapping, missing-hop imputation, AS-loop
//!   filtering, Table-1 completeness classification (§2.1, §4.1),
//! * [`timeline`] — trace timelines: interned AS paths + RTTs per (pair,
//!   protocol) over time (§4.1),
//! * [`columnar`] — the columnar analysis plane: memoized annotation over
//!   an interned [`s2s_probe::TraceStore`], sharded across threads with a
//!   deterministic, byte-identical merge,
//! * [`changes`] — edit-distance routing-change detection, AS-path
//!   lifetimes and prevalence (§4.1–4.2, Figs. 2–3),
//! * [`incremental`] — the epoch-appendable analysis state behind the
//!   always-on service: [`IncrementalState`] folds epoch deltas through
//!   `Analysis::update`, keeping timelines and §4 verdicts byte-identical
//!   to a batch recompute at any delta split,
//! * [`bestpath`] — best-path baselines (10th/90th percentiles), the
//!   lifetime-vs-RTT-increase heat maps and sub-optimal path prevalence
//!   (§4.2, Figs. 4–6),
//! * [`shortterm`] — the 30-minute vs 3-hour cadence robustness check
//!   (§4.3, Fig. 7),
//! * [`congestion`] — FFT-based consistent-congestion detection, segment
//!   localization via Pearson correlation, and overhead estimation
//!   (§5, Fig. 9),
//! * [`ownership`] — the six router-ownership heuristics and owner
//!   election (§5.3, Fig. 8),
//! * [`dualstack`] — IPv4-vs-IPv6 RTT deltas and same-AS-path comparison
//!   (§6, Fig. 10a),
//! * [`inflation`] — RTT inflation over the speed-of-light cRTT
//!   (§6, Fig. 10b),
//! * [`lossrate`] — diurnal packet-loss analysis (the §8 future-work
//!   companion to the RTT-based congestion detector).

pub mod analysis;
pub mod annotate;
pub mod bestpath;
pub mod changes;
pub mod columnar;
pub mod congestion;
pub mod dualstack;
pub mod incremental;
pub mod inflation;
pub mod lossrate;
pub mod ownership;
pub mod shortterm;
pub mod timeline;

pub use analysis::{Analysis, AnalysisSource, DEFAULT_COVERAGE_FLOOR};
pub use annotate::{Annotated, Completeness};
pub use bestpath::{BestPathAnalysis, PathDelta};
pub use columnar::{AddrAsnTable, ColumnarAnnotator};
pub use changes::{
    detect_changes_checked, path_stats_checked, ChangeStats, PathStats,
};
pub use incremental::IncrementalState;
pub use timeline::{TimelineBuilder, TraceTimeline};
