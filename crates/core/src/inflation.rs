//! RTT inflation over the speed of light (§6, Fig. 10b).
//!
//! For each endpoint pair the paper computes the *inflation*: the ratio of
//! the pair's median observed RTT to `cRTT`, the round-trip time of light
//! in free space over the great-circle distance. Medians land near 3.0
//! (IPv4) / 3.1 (IPv6), with US↔US inflation higher than paths over
//! transcontinental links (long submarine hauls fly closer to great
//! circles than terrestrial meshes do).

use crate::timeline::TraceTimeline;
use s2s_geo::GeoPoint;
use s2s_stats::quantiles;

/// The inflation of one pair. `None` when the timeline has no RTTs or the
/// endpoints are too close for a meaningful cRTT (sub-ms, e.g. colocated
/// clusters — the paper's inflation plot is for distinct locations).
pub fn inflation(tl: &TraceTimeline, src: &GeoPoint, dst: &GeoPoint) -> Option<f64> {
    let crtt = s2s_geo::c_rtt_ms(src, dst);
    if crtt < 0.5 {
        return None;
    }
    let rtts: Vec<f64> = tl
        .samples
        .iter()
        .filter_map(|s| s.rtt_ms.map(f64::from))
        .collect();
    // `quantiles` is `None` for empty or all-NaN (all slots lost) input.
    let median = quantiles(&rtts, &[50.0])?[0];
    Some(median / crtt)
}

/// The median RTT of a timeline, ms. `None` when the timeline has no
/// usable (non-NaN) RTTs.
pub fn median_rtt(tl: &TraceTimeline) -> Option<f64> {
    let rtts: Vec<f64> = tl
        .samples
        .iter()
        .filter_map(|s| s.rtt_ms.map(f64::from))
        .collect();
    quantiles(&rtts, &[50.0]).map(|q| q[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Sample;
    use s2s_types::{Asn, AsPath, ClusterId, Protocol, SimTime};

    fn tl(rtts: &[f64]) -> TraceTimeline {
        TraceTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            paths: vec![AsPath::from_asns([Asn::new(1)])],
            samples: rtts
                .iter()
                .enumerate()
                .map(|(i, &r)| Sample {
                    t: SimTime::from_minutes(i as u32 * 180),
                    path: Some(0),
                    rtt_ms: Some(r as f32),
                })
                .collect(),
            counts: Default::default(),
        }
    }

    #[test]
    fn inflation_of_known_pair() {
        // NY <-> LA: ~3940 km, cRTT ~26.3 ms. A 79 ms median → inflation ~3.
        let ny = GeoPoint::new(40.7128, -74.0060);
        let la = GeoPoint::new(34.0522, -118.2437);
        let t = tl(&[78.0, 79.0, 80.0]);
        let inf = inflation(&t, &ny, &la).unwrap();
        assert!((2.8..3.2).contains(&inf), "inflation = {inf}");
    }

    #[test]
    fn colocated_pairs_are_excluded() {
        let p = GeoPoint::new(50.0, 8.0);
        let t = tl(&[1.0, 1.2]);
        assert_eq!(inflation(&t, &p, &p), None);
    }

    #[test]
    fn empty_timeline_is_none() {
        let ny = GeoPoint::new(40.7, -74.0);
        let la = GeoPoint::new(34.1, -118.2);
        let t = tl(&[]);
        assert_eq!(inflation(&t, &ny, &la), None);
        assert_eq!(median_rtt(&t), None);
    }

    #[test]
    fn median_is_robust_to_one_spike() {
        let t = tl(&[50.0, 51.0, 52.0, 400.0, 49.0]);
        let m = median_rtt(&t).unwrap();
        assert!((49.0..53.0).contains(&m), "median = {m}");
    }

    #[test]
    fn inflation_at_least_one_for_physical_rtts() {
        // Any RTT at or above cRTT implies inflation >= 1.
        let ny = GeoPoint::new(40.7128, -74.0060);
        let lon = GeoPoint::new(51.5074, -0.1278);
        let crtt = s2s_geo::c_rtt_ms(&ny, &lon);
        let t = tl(&[crtt * 1.5, crtt * 1.6]);
        assert!(inflation(&t, &ny, &lon).unwrap() >= 1.0);
    }
}
