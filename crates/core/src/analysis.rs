//! The one front door for analyses: [`Analysis`].
//!
//! Mirrors the [`Campaign`](s2s_probe::Campaign) builder on the other side
//! of the measurement plane: wrap a data source, set policy
//! ([`threads`](Analysis::threads), [`observe`](Analysis::observe),
//! [`checked`](Analysis::checked)), then call an analysis method. Which
//! methods exist depends on the source:
//!
//! * `Analysis<&TraceStore>` — the columnar traceroute corpus:
//!   [`timelines`](Analysis::timelines) (the sharded §4 driver) and
//!   [`ownership`](Analysis::ownership) (§5.3),
//! * `Analysis<&Snapshot>` — a reopened binary snapshot
//!   ([`s2s_probe::snapshot`]): the same store methods, delegating to the
//!   embedded [`TraceStore`], so persisted campaign outputs open in
//!   O(distinct-data) and analyze without a line re-import,
//! * `Analysis<SnapshotReader>` — an *open* snapshot stream
//!   (`Snapshot::options().stream(true).open(path)`): the out-of-core §4
//!   driver folds bounded trace batches into timelines, resident bytes
//!   O(arena + one batch), byte-identical to the in-memory path,
//! * `Analysis<ShardDir>` — a directory of per-shard `.snap` files
//!   (`Snapshot::options().open_dir(dir)`): every shard streams through
//!   the same bounded-memory fold, in shard order,
//! * `Analysis<&[TraceTimeline]>` — built timelines:
//!   [`dualstack`](Analysis::dualstack) (§6, Fig. 10a),
//! * `Analysis<&[PingTimeline]>` — materialized ping series: §5.1
//!   [`congestion`](Analysis::congestion) /
//!   [`congestion_checked`](Analysis::congestion_checked),
//! * `Analysis<&[PairProfile]>` — streamed constant-memory profiles: the
//!   same §5.1 classification plus the Fig. 9
//!   [`overheads`](Analysis::overheads), without ever materializing a
//!   timeline,
//! * `Analysis<IncrementalState>` — the live-service state: feed epoch
//!   deltas through [`update`](Analysis::update), read folded
//!   [`timelines`](Analysis::timelines) /
//!   [`change_stats`](Analysis::change_stats) /
//!   [`path_stats`](Analysis::path_stats) in O(pair state), byte-identical
//!   to a batch recompute at any delta split.
//!
//! The admissible sources are exactly the implementors of the sealed
//! [`AnalysisSource`] trait — the named extension point this matrix hangs
//! off. This builder is the only entry point: the loose free functions
//! (`timelines_from_store*`, `infer_ownership_store`) that once shimmed
//! over it are gone.
//!
//! ```no_run
//! # use s2s_core::Analysis;
//! # fn demo(store: &s2s_probe::TraceStore, map: &s2s_bgp::Ip2AsnMap) {
//! let timelines = Analysis::new(store).threads(8).timelines(map);
//! # let _ = timelines;
//! # }
//! ```

use crate::changes::{ChangeStats, PathStats};
use crate::congestion::{
    detect, detect_checked, detect_profile, detect_profile_checked, overhead_profiles,
    DetectParams, PairCongestion,
};
use crate::dualstack::{rtt_diffs, DualStackDiffs};
use crate::incremental::IncrementalState;
use crate::ownership::OwnershipInference;
use crate::timeline::TraceTimeline;
use s2s_bgp::{AsRelStore, Ip2AsnMap};
use s2s_probe::{PairProfile, PingTimeline, TraceStore};
use s2s_types::{AnalysisError, Coverage, Protocol, SimDuration};
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
}

/// The sealed set of data sources [`Analysis::new`] accepts.
///
/// One named extension point instead of an ad-hoc pile of inherent impls:
/// every admissible source is listed here, and which analysis methods a
/// wrapped source offers is documented on its `Analysis<S>` impl. Sealed
/// because the source matrix is part of this crate's semver surface — a
/// foreign source type could not uphold the byte-equivalence contracts
/// the matrix is pinned to.
///
/// Implementors:
///
/// * `&TraceStore` — the in-memory columnar corpus,
/// * `&Snapshot` — a reopened binary snapshot (delegates to its store),
/// * `SnapshotReader<R>` — an open out-of-core snapshot stream,
/// * `ShardDir` — a directory of per-shard snapshot files,
/// * `&[TraceTimeline]` — built timelines (§6 dual-stack),
/// * `&[PingTimeline]` — materialized ping series (§5.1),
/// * `&[PairProfile]` — streamed constant-memory profiles (§5.1, Fig. 9),
/// * [`IncrementalState`] — the live always-on-service state (epoch
///   [`update`](Analysis::update) + O(pair) folded verdicts).
pub trait AnalysisSource: sealed::Sealed {}

impl sealed::Sealed for &TraceStore {}
impl AnalysisSource for &TraceStore {}
impl sealed::Sealed for &s2s_probe::Snapshot {}
impl AnalysisSource for &s2s_probe::Snapshot {}
impl<R: std::io::Read> sealed::Sealed for s2s_probe::SnapshotReader<R> {}
impl<R: std::io::Read> AnalysisSource for s2s_probe::SnapshotReader<R> {}
impl sealed::Sealed for s2s_probe::ShardDir {}
impl AnalysisSource for s2s_probe::ShardDir {}
impl sealed::Sealed for &[TraceTimeline] {}
impl AnalysisSource for &[TraceTimeline] {}
impl sealed::Sealed for &[PingTimeline] {}
impl AnalysisSource for &[PingTimeline] {}
impl sealed::Sealed for &[PairProfile] {}
impl AnalysisSource for &[PairProfile] {}
impl sealed::Sealed for IncrementalState {}
impl AnalysisSource for IncrementalState {}

/// A configured-but-not-yet-run analysis over a data source.
///
/// Construction is pure; nothing happens until an analysis method fires.
/// The source is borrowed, so one builder can run several analyses.
#[derive(Clone, Debug)]
pub struct Analysis<S> {
    source: S,
    threads: usize,
    registry: Option<Arc<s2s_obs::Registry>>,
    floor: f64,
}

/// The default coverage floor of [`Analysis::checked`]-gated analyses:
/// the paper's ≥600-of-672 valid-sample requirement, as the fraction it is
/// (~89.3%), so campaigns of any length state the same standard.
pub const DEFAULT_COVERAGE_FLOOR: f64 = 600.0 / 672.0;

impl<S: AnalysisSource> Analysis<S> {
    /// Starts a builder over `source` — any implementor of the sealed
    /// [`AnalysisSource`] matrix. Threads default to the `S2S_THREADS`
    /// knob (the same knob that sizes campaign workers), the coverage
    /// floor to [`DEFAULT_COVERAGE_FLOOR`].
    pub fn new(source: S) -> Self {
        Analysis {
            source,
            threads: s2s_probe::env::threads(),
            registry: None,
            floor: DEFAULT_COVERAGE_FLOOR,
        }
    }
}

impl<S> Analysis<S> {
    /// Borrows the wrapped source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Overrides the analysis shard-thread count (results are
    /// byte-identical across thread counts; this only sets the speed).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Folds the run's `analysis.*` counters into `registry` when an
    /// analysis method finishes. Without this call they go to the globally
    /// [installed](s2s_obs::install) registry, if any.
    pub fn observe(mut self, registry: Arc<s2s_obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the delivered-over-offered coverage floor the `*_checked`
    /// analysis methods enforce (default [`DEFAULT_COVERAGE_FLOOR`]).
    pub fn checked(mut self, floor: f64) -> Self {
        self.floor = floor;
        self
    }

    /// The coverage floor `*_checked` methods will enforce.
    pub fn coverage_floor(&self) -> f64 {
        self.floor
    }

    fn effective_registry(&self) -> Option<Arc<s2s_obs::Registry>> {
        self.registry.clone().or_else(s2s_obs::installed)
    }

    /// Bumps one `analysis.*` counter on the effective registry.
    fn count(&self, name: &'static str, n: u64) {
        if n > 0 {
            if let Some(reg) = self.effective_registry() {
                reg.counter(name).add(n);
            }
        }
    }
}

impl Analysis<&TraceStore> {
    /// The §4 columnar analysis: one [`TraceTimeline`] per
    /// (src, dst, protocol) group, in first-seen order, sharded across the
    /// builder's thread count with a byte-identical merge.
    pub fn timelines(&self, map: &Ip2AsnMap) -> Vec<TraceTimeline> {
        let out = crate::columnar::timelines_from_store_impl(self.source, map, self.threads);
        self.count("analysis.timelines_built", out.len() as u64);
        out
    }

    /// §5.3 router-ownership inference over the store: one pass per
    /// distinct reached hop sequence (exactly equal to feeding every
    /// trace's path — the heuristics consume sets).
    pub fn ownership(&self, map: &Ip2AsnMap, rels: &AsRelStore) -> OwnershipInference {
        crate::columnar::infer_ownership_store_impl(self.source, map, rels)
    }
}

impl Analysis<&s2s_probe::Snapshot> {
    /// The §4 columnar analysis over a reopened snapshot — identical to
    /// `Analysis::new(&snapshot.store)`, so a persisted campaign output is
    /// an analysis input without any line re-import. Byte-identical to the
    /// legacy import path (pinned in `tests/tests/snapshot_equivalence.rs`).
    pub fn timelines(&self, map: &Ip2AsnMap) -> Vec<TraceTimeline> {
        Analysis {
            source: &self.source.store,
            threads: self.threads,
            registry: self.registry.clone(),
            floor: self.floor,
        }
        .timelines(map)
    }

    /// §5.3 ownership inference over the reopened store.
    pub fn ownership(&self, map: &Ip2AsnMap, rels: &AsRelStore) -> OwnershipInference {
        Analysis {
            source: &self.source.store,
            threads: self.threads,
            registry: self.registry.clone(),
            floor: self.floor,
        }
        .ownership(map, rels)
    }
}

impl<R: std::io::Read> Analysis<s2s_probe::SnapshotReader<R>> {
    /// The out-of-core §4 analysis: drains the open snapshot stream batch
    /// by batch, folding traces into per-group timelines as they decode —
    /// resident bytes stay O(arena + one batch) no matter the trace count.
    /// Byte-identical to materializing the snapshot and running the
    /// in-memory driver (pinned in `tests/tests/snapshot_equivalence.rs`);
    /// the builder's thread count is ignored (the fold is sequential, and
    /// the in-memory results are thread-count-independent anyway).
    ///
    /// Consumes the builder: a snapshot stream yields its batches once.
    pub fn timelines(self, map: &Ip2AsnMap) -> std::io::Result<Vec<TraceTimeline>> {
        let Analysis { source: mut reader, registry, .. } = self;
        let out = s2s_obs::timed("analysis.columnar_streamed", || {
            let mut stream = crate::columnar::StreamingTimelines::new();
            stream.absorb_reader(&mut reader, map)?;
            Ok::<_, std::io::Error>(stream.finish())
        })?;
        if !out.is_empty() {
            if let Some(reg) = registry.or_else(s2s_obs::installed) {
                reg.counter("analysis.timelines_built").add(out.len() as u64);
            }
        }
        Ok(out)
    }
}

impl Analysis<s2s_probe::ShardDir> {
    /// The out-of-core §4 analysis over a directory of per-shard `.snap`
    /// files: each shard streams through the bounded-memory fold in shard
    /// order, with a fresh per-shard annotator (interned ids are
    /// shard-local; annotations are not). Byte-identical to absorbing
    /// every shard into one store and running the in-memory driver.
    pub fn timelines(&self, map: &Ip2AsnMap) -> std::io::Result<Vec<TraceTimeline>> {
        let out = s2s_obs::timed("analysis.columnar_streamed", || {
            let mut stream = crate::columnar::StreamingTimelines::new();
            for path in self.source.paths() {
                let mut reader = self.source.options().open(path)?;
                stream.absorb_reader(&mut reader, map)?;
            }
            Ok::<_, std::io::Error>(stream.finish())
        })?;
        self.count("analysis.timelines_built", out.len() as u64);
        Ok(out)
    }
}

impl Analysis<&[TraceTimeline]> {
    /// §6 dual-stack RTT deltas (Fig. 10a): pairs each v4 timeline with
    /// the v6 timeline of the same (src, dst) pair — the adjacent-protocol
    /// layout every campaign produces (pair-major, protocol-minor) — and
    /// computes best-path RTT differences per sample instant.
    pub fn dualstack(&self) -> Vec<DualStackDiffs> {
        let out: Vec<DualStackDiffs> = self
            .source
            .chunks(2)
            .filter(|c| {
                c.len() == 2
                    && c[0].proto == Protocol::V4
                    && c[1].proto == Protocol::V6
                    && (c[0].src, c[0].dst) == (c[1].src, c[1].dst)
            })
            .map(|c| rtt_diffs(&c[0], &c[1]))
            .collect();
        self.count("analysis.dualstack_pairs", out.len() as u64);
        out
    }
}

impl Analysis<&[PingTimeline]> {
    /// §5.1 consistent-congestion detection over every timeline. `None`
    /// entries are timelines below the absolute
    /// [`DetectParams::min_valid_samples`] gate.
    pub fn congestion(&self, params: &DetectParams) -> Vec<Option<PairCongestion>> {
        let out: Vec<_> = self.source.iter().map(|tl| detect(tl, params)).collect();
        self.count("analysis.congestion_pairs", out.len() as u64);
        out
    }

    /// Coverage-checked §5.1 detection: every verdict annotated with its
    /// coverage, timelines below the builder's
    /// [`checked`](Analysis::checked) floor refused with a typed error.
    pub fn congestion_checked(
        &self,
        params: &DetectParams,
    ) -> Vec<Result<(PairCongestion, Coverage), AnalysisError>> {
        let out: Vec<_> = self
            .source
            .iter()
            .map(|tl| detect_checked(tl, params, self.floor))
            .collect();
        self.count("analysis.congestion_pairs", out.len() as u64);
        out
    }
}

impl Analysis<&[PairProfile]> {
    /// §5.1 consistent-congestion detection straight from streamed
    /// profiles — same verdict shape as the materialized path, no
    /// timelines needed.
    pub fn congestion(&self, params: &DetectParams) -> Vec<Option<PairCongestion>> {
        let out: Vec<_> =
            self.source.iter().map(|p| detect_profile(p, params)).collect();
        self.count("analysis.congestion_pairs", out.len() as u64);
        out
    }

    /// Coverage-checked streamed detection, gated by the builder's
    /// [`checked`](Analysis::checked) floor.
    pub fn congestion_checked(
        &self,
        params: &DetectParams,
    ) -> Vec<Result<(PairCongestion, Coverage), AnalysisError>> {
        let out: Vec<_> = self
            .source
            .iter()
            .map(|p| detect_profile_checked(p, params, self.floor))
            .collect();
        self.count("analysis.congestion_pairs", out.len() as u64);
        out
    }

    /// The Fig. 9 overhead sample set: one 95th−5th spread per
    /// consistently congested profile.
    pub fn overheads(&self, params: &DetectParams) -> Vec<f64> {
        overhead_profiles(self.source, params)
    }
}

impl Analysis<IncrementalState> {
    /// Folds one epoch delta into the live state: the incremental path
    /// next to the batch one. After any sequence of updates the folded
    /// timelines and verdicts are byte-identical to a single batch
    /// `Analysis` over the concatenated trace stream — regardless of how
    /// the stream was split into deltas (pinned in
    /// `tests/tests/incremental_equivalence.rs`).
    pub fn update(&mut self, delta: &TraceStore, map: &Ip2AsnMap) {
        s2s_obs::timed("analysis.update", || self.source.absorb(delta, map));
        self.count("analysis.updates", 1);
        self.count("analysis.update_traces", delta.len() as u64);
    }

    /// The timelines folded so far, one per (src, dst, protocol) group in
    /// first-seen order.
    pub fn timelines(&self) -> &[TraceTimeline] {
        self.source.timelines()
    }

    /// The folded §4.1 change verdicts, one per group — equal to running
    /// [`detect_changes`](crate::changes::detect_changes) on each timeline, but
    /// read straight from the per-pair fold state.
    pub fn change_stats(&self) -> Vec<ChangeStats> {
        (0..self.source.len()).map(|gi| self.source.change_stats_of(gi)).collect()
    }

    /// Coverage-checked [`change_stats`](Analysis::change_stats): each
    /// verdict annotated with its timeline's coverage, groups below the
    /// builder's [`checked`](Analysis::checked) floor refused with a typed
    /// error — the incremental mirror of
    /// [`detect_changes_checked`](crate::detect_changes_checked).
    pub fn change_stats_checked(
        &self,
    ) -> Vec<Result<(ChangeStats, Coverage), AnalysisError>> {
        self.source
            .timelines()
            .iter()
            .enumerate()
            .map(|(gi, tl)| {
                let coverage = tl.coverage();
                coverage.require(self.floor)?;
                Ok((self.source.change_stats_of(gi), coverage))
            })
            .collect()
    }

    /// The folded §4.2 lifetime/prevalence verdicts, one per group —
    /// equal to running [`path_stats`](crate::changes::path_stats) on each
    /// timeline with `interval`.
    pub fn path_stats(&self, interval: SimDuration) -> Vec<PathStats> {
        (0..self.source.len()).map(|gi| self.source.path_stats_of(gi, interval)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_probe::{CampaignConfig, PairProfileSink, StreamSink};
    use s2s_types::{ClusterId, SimDuration, SimTime};
    use std::f64::consts::PI;

    fn diurnal_series(amp: f64, noise: f64) -> Vec<f32> {
        (0..672)
            .map(|i| {
                let phase = 2.0 * PI * i as f64 / 96.0;
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                (60.0 + amp * phase.sin().max(0.0) + noise * u) as f32
            })
            .collect()
    }

    fn timeline(rtts: Vec<f32>) -> PingTimeline {
        PingTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            start: SimTime::T0,
            interval: SimDuration::from_minutes(15),
            rtts,
        }
    }

    fn profile_of(rtts: &[f32]) -> PairProfile {
        let cfg = CampaignConfig::ping_week(SimTime::T0);
        let sink = PairProfileSink::with_shape(&cfg, 256, 128);
        let mut st = sink.init(ClusterId::new(0), ClusterId::new(1), Protocol::V4);
        for (ti, &r) in rtts.iter().enumerate() {
            let t = cfg.start + SimDuration::from_minutes(ti as u32 * 15);
            sink.fold(&mut st, ti as u64, t, (!r.is_nan()).then(|| f64::from(r)));
        }
        sink.finish(&mut st);
        st
    }

    #[test]
    fn builder_defaults_and_policy_setters() {
        let tls: Vec<PingTimeline> = Vec::new();
        let a = Analysis::new(tls.as_slice());
        assert!((a.coverage_floor() - DEFAULT_COVERAGE_FLOOR).abs() < 1e-12);
        let a = a.threads(0).checked(0.5);
        assert_eq!(a.threads, 1);
        assert!((a.coverage_floor() - 0.5).abs() < 1e-12);
        assert!(a.congestion(&DetectParams::default()).is_empty());
    }

    #[test]
    fn ping_congestion_matches_the_free_functions() {
        let tls =
            vec![timeline(diurnal_series(30.0, 2.0)), timeline(diurnal_series(0.0, 3.0))];
        let params = DetectParams::default();
        let verdicts = Analysis::new(tls.as_slice()).congestion(&params);
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0], detect(&tls[0], &params));
        assert!(verdicts[0].unwrap().consistent);
        assert!(!verdicts[1].unwrap().consistent);

        let checked = Analysis::new(tls.as_slice()).checked(0.89).congestion_checked(&params);
        let (v, cov) = checked[0].as_ref().unwrap();
        assert!(v.consistent);
        assert_eq!(cov.offered, 672);
    }

    #[test]
    fn profile_congestion_and_overheads_mirror_streamed_module() {
        let profiles =
            vec![profile_of(&diurnal_series(30.0, 2.0)), profile_of(&diurnal_series(0.0, 3.0))];
        let params = DetectParams::default();
        let a = Analysis::new(profiles.as_slice());
        let verdicts = a.congestion(&params);
        assert!(verdicts[0].unwrap().consistent);
        assert!(!verdicts[1].unwrap().consistent);
        let overheads = a.overheads(&params);
        assert_eq!(overheads, overhead_profiles(&profiles, &params));
        assert_eq!(overheads.len(), 1);
        let checked = a.congestion_checked(&params);
        assert!(checked.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn dualstack_pairs_adjacent_protocol_timelines() {
        use crate::timeline::TraceTimeline;
        let mk = |proto, src: u32| TraceTimeline {
            src: ClusterId::new(src),
            dst: ClusterId::new(9),
            proto,
            paths: Vec::new(),
            samples: Vec::new(),
            counts: Default::default(),
        };
        let tls = vec![
            mk(Protocol::V4, 1),
            mk(Protocol::V6, 1),
            mk(Protocol::V4, 2),
            mk(Protocol::V6, 2),
        ];
        let diffs = Analysis::new(tls.as_slice()).dualstack();
        assert_eq!(diffs.len(), 2);
        // A mispaired layout (two V4s adjacent) contributes nothing.
        let bad = vec![mk(Protocol::V4, 1), mk(Protocol::V4, 1)];
        assert!(Analysis::new(bad.as_slice()).dualstack().is_empty());
    }

    #[test]
    fn observe_folds_counters_into_the_registry() {
        let reg = Arc::new(s2s_obs::Registry::new());
        let tls = vec![timeline(diurnal_series(30.0, 2.0))];
        let _ = Analysis::new(tls.as_slice())
            .observe(reg.clone())
            .congestion(&DetectParams::default());
        assert_eq!(reg.counter("analysis.congestion_pairs").get(), 1);
    }
}
