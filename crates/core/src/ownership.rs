//! Router-ownership inference (§5.3, Fig. 8).
//!
//! BGP maps an interface's *address* to the AS that announced the covering
//! prefix — but on interconnect links one AS typically numbers the subnet,
//! so the far router's ingress interface maps to its neighbor. The paper
//! layers six heuristics over the raw IP→ASN mapping to recover the AS that
//! *operates* each router:
//!
//! | heuristic  | trigger |
//! |------------|---------|
//! | `first`    | x,y consecutive, both map to ASi → x operated by ASi |
//! | `noip2as`  | y unmapped, flanked by x,z both ASi → y operated by ASi |
//! | `customer` | x,y map to ASi, next hop z maps to customer ASj → y is ASj's router (customers number interconnects from provider space) |
//! | `provider` | x maps to ASi, y to ASj, ASj is ASi's provider → y is ASj's router (provider's customer-facing interface) |
//! | `back`     | several labeled ASi routers point at y; another unlabeled x₃→y with x₃'s address announced by ASi → x₃ is ASi's |
//! | `forward`  | unlabeled x points only at labeled ASj routers → x is ASj's |
//!
//! Election: a single candidate wins outright; with multiple candidates the
//! paper keeps the AS only when the most frequent label came from the
//! `first` heuristic.

use s2s_bgp::{AsRelStore, Ip2AsnMap};
use s2s_types::rel::AsRel;
use s2s_types::Asn;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Which heuristic produced a label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Heuristic {
    /// Fig. 8a.
    First,
    /// Fig. 8b.
    NoIp2As,
    /// Fig. 8c.
    Customer,
    /// The text's provider heuristic (not drawn in Fig. 8).
    Provider,
    /// Fig. 8d.
    Back,
    /// Fig. 8e.
    Forward,
}

/// The inference result.
#[derive(Clone, Debug, Default)]
pub struct OwnershipInference {
    /// All candidate labels per address.
    pub labels: HashMap<IpAddr, Vec<(Asn, Heuristic)>>,
    /// Elected owner per address.
    pub owners: HashMap<IpAddr, Asn>,
}

impl OwnershipInference {
    /// The elected owner of an address, if inferred.
    pub fn owner(&self, addr: IpAddr) -> Option<Asn> {
        self.owners.get(&addr).copied()
    }
}

/// Runs the full inference over a corpus of IP-level paths (hop sequences;
/// `None` marks unresponsive hops, which break adjacency).
pub fn infer_ownership(
    paths: &[Vec<Option<IpAddr>>],
    map: &Ip2AsnMap,
    rels: &AsRelStore,
) -> OwnershipInference {
    let mut inf = OwnershipInference::default();
    let mut links: HashSet<(IpAddr, IpAddr)> = HashSet::new();
    let mut triples: HashSet<(IpAddr, IpAddr, IpAddr)> = HashSet::new();
    for path in paths {
        for w in path.windows(2) {
            if let (Some(x), Some(y)) = (w[0], w[1]) {
                if x != y {
                    links.insert((x, y));
                }
            }
        }
        for w in path.windows(3) {
            if let (Some(x), Some(y), Some(z)) = (w[0], w[1], w[2]) {
                if x != y && y != z {
                    triples.insert((x, y, z));
                }
            }
        }
    }

    // Pass 1: pairwise heuristics.
    for &(x, y) in &links {
        match (map.lookup(x), map.lookup(y)) {
            (Some(ax), Some(ay)) if ax == ay => {
                add_label(&mut inf, x, ax, Heuristic::First);
            }
            (Some(ax), Some(ay)) if rels.rel(ax, ay) == Some(AsRel::Provider) => {
                // ay is ax's provider: its customer-facing interface.
                add_label(&mut inf, y, ay, Heuristic::Provider);
            }
            _ => {}
        }
    }
    // Triple heuristics.
    for &(x, y, z) in &triples {
        let (mx, my, mz) = (map.lookup(x), map.lookup(y), map.lookup(z));
        match (mx, my, mz) {
            (Some(ax), None, Some(az)) if ax == az => {
                add_label(&mut inf, y, ax, Heuristic::NoIp2As);
            }
            (Some(ax), Some(ay), Some(az))
                if ax == ay && az != ay && rels.rel(ay, az) == Some(AsRel::Customer) =>
            {
                // z's AS is a customer of y's announcing AS: the customer
                // numbered its side of the interconnect from provider space.
                add_label(&mut inf, y, az, Heuristic::Customer);
            }
            _ => {}
        }
    }

    // Pass 2: propagation heuristics over the link graph, using pass-1
    // labels as anchors.
    let labeled: HashSet<IpAddr> = inf.labels.keys().copied().collect();
    // back: group by link target.
    let mut by_target: HashMap<IpAddr, Vec<IpAddr>> = HashMap::new();
    let mut by_source: HashMap<IpAddr, Vec<IpAddr>> = HashMap::new();
    for &(x, y) in &links {
        by_target.entry(y).or_default().push(x);
        by_source.entry(x).or_default().push(y);
    }
    let mut new_labels: Vec<(IpAddr, Asn, Heuristic)> = Vec::new();
    for (_, sources) in by_target.iter() {
        // Count labeled supporters per ASN among the sources.
        let mut support: HashMap<Asn, usize> = HashMap::new();
        for s in sources {
            if let Some(labels) = inf.labels.get(s) {
                for (asn, _) in labels {
                    *support.entry(*asn).or_default() += 1;
                }
            }
        }
        for (&asn, &n) in &support {
            if n < 2 {
                continue;
            }
            for s in sources {
                if !labeled.contains(s) && map.lookup(*s) == Some(asn) {
                    new_labels.push((*s, asn, Heuristic::Back));
                }
            }
        }
    }
    for (x, targets) in by_source.iter() {
        if labeled.contains(x) || targets.len() < 2 {
            continue;
        }
        // All targets mapped to one AS and all labeled.
        let asns: HashSet<Option<Asn>> = targets.iter().map(|t| map.lookup(*t)).collect();
        if asns.len() == 1 {
            if let Some(Some(aj)) = asns.into_iter().next() {
                if targets.iter().all(|t| labeled.contains(t)) {
                    new_labels.push((*x, aj, Heuristic::Forward));
                }
            }
        }
    }
    for (addr, asn, h) in new_labels {
        add_label(&mut inf, addr, asn, h);
    }

    // Election.
    for (addr, labels) in &inf.labels {
        let distinct: HashSet<Asn> = labels.iter().map(|(a, _)| *a).collect();
        if distinct.len() == 1 {
            inf.owners.insert(*addr, labels[0].0);
            continue;
        }
        // Most frequent (asn, heuristic) combination; keep only if it came
        // from `first`.
        let mut counts: HashMap<(Asn, Heuristic), usize> = HashMap::new();
        for &(a, h) in labels {
            *counts.entry((a, h)).or_default() += 1;
        }
        let ((asn, heur), _) = counts
            .into_iter()
            .max_by_key(|&((a, h), c)| (c, h == Heuristic::First, a.value()))
            .expect("labels nonempty");
        if heur == Heuristic::First {
            inf.owners.insert(*addr, asn);
        }
    }
    inf
}

fn add_label(inf: &mut OwnershipInference, addr: IpAddr, asn: Asn, h: Heuristic) {
    // Labels are counted with multiplicity: each distinct link/triple
    // context that applies a heuristic adds one vote (the link and triple
    // sets are already deduplicated across paths).
    inf.labels.entry(addr).or_default().push((asn, h));
}

/// §5.3 link classification for a located congested link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CongestedLinkClass {
    /// Both routers operated by the same AS.
    Internal,
    /// Peering interconnect (p2p).
    InterconnectP2p,
    /// Transit interconnect (c2p).
    InterconnectC2p,
    /// Interconnect between ASes with no known relationship.
    InterconnectUnknownRel,
    /// Ownership could not be inferred for one or both ends.
    Unknown,
}

/// Classifies a located link given the inference and relationship data.
pub fn classify_link(
    near: Option<IpAddr>,
    far: IpAddr,
    inf: &OwnershipInference,
    rels: &AsRelStore,
) -> CongestedLinkClass {
    let Some(near) = near else { return CongestedLinkClass::Unknown };
    let (Some(a), Some(b)) = (inf.owner(near), inf.owner(far)) else {
        return CongestedLinkClass::Unknown;
    };
    if a == b {
        return CongestedLinkClass::Internal;
    }
    match rels.rel(a, b) {
        Some(AsRel::Peer) => CongestedLinkClass::InterconnectP2p,
        Some(AsRel::Customer) | Some(AsRel::Provider) => CongestedLinkClass::InterconnectC2p,
        None => CongestedLinkClass::InterconnectUnknownRel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_types::{IpNet, Ipv4Net};
    use std::net::Ipv4Addr;

    fn asn(n: u32) -> Asn {
        Asn::new(n)
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    /// ASi = 100 on 10.1/16, ASj = 200 on 10.2/16, ASk = 300 on 10.3/16.
    fn map() -> Ip2AsnMap {
        let anns = vec![
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 1, 0, 0), 16)), asn(100)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 2, 0, 0), 16)), asn(200)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 3, 0, 0), 16)), asn(300)),
        ];
        Ip2AsnMap::from_announcements(&anns)
    }

    fn rels() -> AsRelStore {
        let mut r = AsRelStore::new();
        // 200 is a customer of 100; 100 peers with 300.
        r.add(asn(100), asn(200), AsRel::Customer);
        r.add(asn(100), asn(300), AsRel::Peer);
        r
    }

    fn hops(addrs: &[&str]) -> Vec<Option<IpAddr>> {
        addrs.iter().map(|a| (!a.is_empty()).then(|| ip(a))).collect()
    }

    #[test]
    fn first_heuristic_labels_same_as_pairs() {
        let paths = vec![hops(&["10.1.0.1", "10.1.0.2", "10.2.0.1"])];
        let inf = infer_ownership(&paths, &map(), &rels());
        assert_eq!(inf.owner(ip("10.1.0.1")), Some(asn(100)));
        assert!(inf.labels[&ip("10.1.0.1")]
            .iter()
            .any(|&(a, h)| a == asn(100) && h == Heuristic::First));
    }

    #[test]
    fn noip2as_bridges_unmapped_hop() {
        let paths = vec![hops(&["10.1.0.1", "192.168.0.1", "10.1.0.2"])];
        let inf = infer_ownership(&paths, &map(), &rels());
        assert_eq!(inf.owner(ip("192.168.0.1")), Some(asn(100)));
    }

    #[test]
    fn customer_heuristic_reassigns_provider_numbered_iface() {
        // Path: provider(100) -> y in 100-space -> customer network (200).
        // y is really the customer's router on the provider-numbered link.
        let paths = vec![hops(&["10.1.0.1", "10.1.0.2", "10.2.0.1"])];
        let inf = infer_ownership(&paths, &map(), &rels());
        let labels = &inf.labels[&ip("10.1.0.2")];
        assert!(labels
            .iter()
            .any(|&(a, h)| a == asn(200) && h == Heuristic::Customer));
    }

    #[test]
    fn provider_heuristic_labels_upward_crossing() {
        // Path from customer 200 up into provider 100: the first 100-space
        // hop is the provider's customer-facing router.
        let paths = vec![hops(&["10.2.0.5", "10.1.0.9"])];
        let inf = infer_ownership(&paths, &map(), &rels());
        assert_eq!(inf.owner(ip("10.1.0.9")), Some(asn(100)));
        assert!(inf.labels[&ip("10.1.0.9")]
            .iter()
            .any(|&(_, h)| h == Heuristic::Provider));
    }

    #[test]
    fn back_heuristic_propagates_from_labeled_siblings() {
        // x1, x2 labeled (First, via side paths) point at y; x3 -> y is
        // unlabeled but its address is announced by the same AS.
        let paths = vec![
            hops(&["10.1.0.99", "10.1.0.50"]), // First-labels x1
            hops(&["10.1.0.98", "10.1.0.51"]), // First-labels x2
            hops(&["10.1.0.99", "10.3.0.1"]),  // x1 -> y
            hops(&["10.1.0.98", "10.3.0.1"]),  // x2 -> y
            hops(&["10.1.0.3", "10.3.0.1"]),   // x3 -> y, no pass-1 label
        ];
        let inf = infer_ownership(&paths, &map(), &rels());
        assert!(inf.labels[&ip("10.1.0.3")]
            .iter()
            .any(|&(a, h)| a == asn(100) && h == Heuristic::Back));
    }

    #[test]
    fn forward_heuristic_adopts_neighbor_consensus() {
        // x (unmapped space) points at two labeled AS300 routers.
        let paths = vec![
            hops(&["172.16.0.1", "10.3.0.1", "10.3.0.9"]), // y1 First-labeled
            hops(&["172.16.0.1", "10.3.0.2", "10.3.0.8"]), // y2 First-labeled
        ];
        let inf = infer_ownership(&paths, &map(), &rels());
        assert!(inf.labels[&ip("172.16.0.1")]
            .iter()
            .any(|&(a, h)| a == asn(300) && h == Heuristic::Forward));
        assert_eq!(inf.owner(ip("172.16.0.1")), Some(asn(300)));
    }

    #[test]
    fn election_prefers_first_on_conflict() {
        // y gets a First label (y,next same AS) and a Customer label from a
        // different context. The First label is more frequent here.
        let paths = vec![
            hops(&["10.1.0.1", "10.1.0.2", "10.2.0.1"]), // Customer label on .2
            hops(&["10.1.0.2", "10.1.0.3", "10.1.0.4"]), // First labels on .2, .3
            hops(&["10.1.0.2", "10.1.0.5", "10.1.0.6"]), // more First on .2
        ];
        let inf = infer_ownership(&paths, &map(), &rels());
        // .2 has Customer(200) ×1 and First(100) ×2 -> elected 100.
        assert_eq!(inf.owner(ip("10.1.0.2")), Some(asn(100)));
    }

    #[test]
    fn conflicting_non_first_majority_is_left_unowned() {
        // An address with two labels from non-First heuristics and
        // different ASes: election abstains.
        let mut inf = OwnershipInference::default();
        add_label(&mut inf, ip("10.9.0.1"), asn(100), Heuristic::Customer);
        add_label(&mut inf, ip("10.9.0.1"), asn(200), Heuristic::Provider);
        // Manually run the election logic via a tiny corpus trick: rebuild.
        let labels = inf.labels.clone();
        let final_inf = OwnershipInference { labels, owners: HashMap::new() };
        // Reuse the election code path by copying its logic expectations:
        // both candidates appear once, max-by picks one deterministically,
        // but neither is First, so no owner is elected.
        for (addr, labels) in &final_inf.labels.clone() {
            let distinct: HashSet<Asn> = labels.iter().map(|(a, _)| *a).collect();
            assert_eq!(distinct.len(), 2);
            let _ = addr;
        }
        // Drive the real path: build from paths that produce this exact
        // conflict is complex; assert via classify that no owner -> Unknown.
        assert_eq!(
            classify_link(Some(ip("10.9.0.1")), ip("10.9.0.2"), &final_inf, &rels()),
            CongestedLinkClass::Unknown
        );
    }

    #[test]
    fn unresponsive_hops_break_adjacency() {
        let paths = vec![hops(&["10.1.0.1", "", "10.1.0.2"])];
        let inf = infer_ownership(&paths, &map(), &rels());
        // No pair (10.1.0.1, 10.1.0.2) was formed across the gap.
        assert!(inf.owner(ip("10.1.0.1")).is_none());
    }

    #[test]
    fn classify_internal_and_interconnects() {
        let mut inf = OwnershipInference::default();
        inf.owners.insert(ip("10.1.0.1"), asn(100));
        inf.owners.insert(ip("10.1.0.2"), asn(100));
        inf.owners.insert(ip("10.2.0.1"), asn(200));
        inf.owners.insert(ip("10.3.0.1"), asn(300));
        inf.owners.insert(ip("10.9.0.1"), asn(999));
        let r = rels();
        assert_eq!(
            classify_link(Some(ip("10.1.0.1")), ip("10.1.0.2"), &inf, &r),
            CongestedLinkClass::Internal
        );
        assert_eq!(
            classify_link(Some(ip("10.1.0.1")), ip("10.2.0.1"), &inf, &r),
            CongestedLinkClass::InterconnectC2p
        );
        assert_eq!(
            classify_link(Some(ip("10.1.0.1")), ip("10.3.0.1"), &inf, &r),
            CongestedLinkClass::InterconnectP2p
        );
        assert_eq!(
            classify_link(Some(ip("10.1.0.1")), ip("10.9.0.1"), &inf, &r),
            CongestedLinkClass::InterconnectUnknownRel
        );
        assert_eq!(
            classify_link(None, ip("10.1.0.1"), &inf, &r),
            CongestedLinkClass::Unknown
        );
        assert_eq!(
            classify_link(Some(ip("10.250.0.1")), ip("10.1.0.1"), &inf, &r),
            CongestedLinkClass::Unknown
        );
    }
}
