//! Best-path baselines and sub-optimal path costs (§4.2, Figs. 4–6).
//!
//! Per timeline, RTTs are aggregated by AS path. The 10th percentile of a
//! path's RTTs is its *baseline* (spikes excluded), the 90th captures the
//! spikes. The path with the lowest 10th percentile is the *best* path
//! among those actually observed; every other path's increase over it
//! quantifies the cost of the sub-optimal route. Fig. 4 correlates that
//! increase with the path's lifetime; Fig. 5 repeats with 90th
//! percentiles; Fig. 6 sums the prevalence of paths above fixed thresholds.

use crate::changes::path_stats;
use crate::timeline::TraceTimeline;
use s2s_stats::{quantiles, stddev};
use s2s_types::SimDuration;

/// One sub-optimal path's statistics, relative to its timeline's best path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathDelta {
    /// Index of the path within the timeline.
    pub path: usize,
    /// Lifetime in hours.
    pub lifetime_hours: f64,
    /// Prevalence (0–1).
    pub prevalence: f64,
    /// Increase of this path's 10th-percentile RTT over the best path's
    /// (best chosen by lowest 10th percentile). ≥ 0 by construction.
    pub delta_p10_ms: f64,
    /// Increase of this path's 90th-percentile RTT over the lowest 90th
    /// percentile among the timeline's paths.
    pub delta_p90_ms: f64,
    /// Increase of this path's RTT standard deviation over the lowest.
    pub delta_std_ms: f64,
}

/// The per-timeline best-path analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct BestPathAnalysis {
    /// Path index with the lowest 10th-percentile RTT.
    pub best_by_p10: usize,
    /// Path index with the lowest 90th-percentile RTT.
    pub best_by_p90: usize,
    /// Statistics for every *other* (sub-optimal by p10) path.
    pub deltas: Vec<PathDelta>,
}

/// Runs the analysis. Returns `None` when the timeline has fewer than two
/// paths with RTT data (single-path timelines are excluded, §4.2).
pub fn best_path_analysis(
    tl: &TraceTimeline,
    interval: SimDuration,
) -> Option<BestPathAnalysis> {
    let by_path = tl.rtts_by_path();
    let stats = path_stats(tl, interval);
    // Percentiles per path with data. `quantiles` is `None` for paths with
    // no usable (non-NaN) samples; those are excluded like empty paths.
    let mut per_path: Vec<Option<(f64, f64, f64)>> = Vec::with_capacity(by_path.len());
    for rtts in &by_path {
        per_path.push(
            quantiles(rtts, &[10.0, 90.0]).map(|q| (q[0], q[1], stddev(rtts).unwrap())),
        );
    }
    let with_data: Vec<usize> =
        (0..per_path.len()).filter(|&i| per_path[i].is_some()).collect();
    if with_data.len() < 2 {
        return None;
    }
    let pick_min = |f: fn(&(f64, f64, f64)) -> f64| {
        *with_data
            .iter()
            .min_by(|&&a, &&b| {
                f(per_path[a].as_ref().unwrap())
                    .partial_cmp(&f(per_path[b].as_ref().unwrap()))
                    .unwrap()
            })
            .unwrap()
    };
    let best_by_p10 = pick_min(|s| s.0);
    let best_by_p90 = pick_min(|s| s.1);
    let best_by_std = pick_min(|s| s.2);
    let (best_p10, _, _) = per_path[best_by_p10].unwrap();
    let (_, best_p90, _) = per_path[best_by_p90].unwrap();
    let (_, _, best_std) = per_path[best_by_std].unwrap();

    let deltas = with_data
        .iter()
        .filter(|&&i| i != best_by_p10)
        .map(|&i| {
            let (p10, p90, sd) = per_path[i].unwrap();
            PathDelta {
                path: i,
                lifetime_hours: stats.lifetimes[i].hours(),
                prevalence: stats.prevalence[i],
                delta_p10_ms: p10 - best_p10,
                delta_p90_ms: p90 - best_p90,
                delta_std_ms: sd - best_std,
            }
        })
        .collect();
    Some(BestPathAnalysis { best_by_p10, best_by_p90, deltas })
}

/// Fig. 6: the summed prevalence of this timeline's sub-optimal paths whose
/// baseline (10th-percentile) increase is at least `threshold_ms`.
/// Timelines with a single path contribute 0.
pub fn suboptimal_prevalence(
    tl: &TraceTimeline,
    interval: SimDuration,
    threshold_ms: f64,
) -> f64 {
    match best_path_analysis(tl, interval) {
        Some(a) => a
            .deltas
            .iter()
            .filter(|d| d.delta_p10_ms >= threshold_ms)
            .map(|d| d.prevalence)
            .sum(),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Sample;
    use s2s_types::{Asn, AsPath, ClusterId, Protocol, SimTime};

    /// A timeline alternating between paths with given RTT levels.
    fn tl(levels: &[(u32, f64, usize)]) -> TraceTimeline {
        // levels: (path marker ASN, rtt level, sample count)
        let mut paths = Vec::new();
        let mut samples = Vec::new();
        let mut t = 0u32;
        for &(marker, rtt, n) in levels {
            let path =
                AsPath::from_asns([Asn::new(1), Asn::new(marker), Asn::new(9)]);
            let id = paths.iter().position(|p| *p == path).unwrap_or_else(|| {
                paths.push(path.clone());
                paths.len() - 1
            }) as u16;
            for i in 0..n {
                samples.push(Sample {
                    t: SimTime::from_minutes(t),
                    path: Some(id),
                    rtt_ms: Some((rtt + (i % 3) as f64) as f32),
                });
                t += 180;
            }
        }
        TraceTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            paths,
            samples,
            counts: Default::default(),
        }
    }

    #[test]
    fn best_path_is_the_low_rtt_one() {
        let t = tl(&[(2, 50.0, 10), (3, 120.0, 4)]);
        let a = best_path_analysis(&t, SimDuration::from_hours(3)).unwrap();
        assert_eq!(a.best_by_p10, 0);
        assert_eq!(a.deltas.len(), 1);
        let d = &a.deltas[0];
        assert!((d.delta_p10_ms - 70.0).abs() < 2.0, "delta = {}", d.delta_p10_ms);
        assert!((d.lifetime_hours - 12.0).abs() < 1e-9);
        assert!((d.prevalence - 4.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn single_path_timeline_is_excluded() {
        let t = tl(&[(2, 50.0, 10)]);
        assert!(best_path_analysis(&t, SimDuration::from_hours(3)).is_none());
        assert_eq!(suboptimal_prevalence(&t, SimDuration::from_hours(3), 20.0), 0.0);
    }

    #[test]
    fn deltas_are_nonnegative_for_p10() {
        let t = tl(&[(2, 50.0, 5), (3, 60.0, 5), (4, 90.0, 5)]);
        let a = best_path_analysis(&t, SimDuration::from_hours(3)).unwrap();
        assert_eq!(a.deltas.len(), 2);
        for d in &a.deltas {
            assert!(d.delta_p10_ms >= 0.0);
        }
    }

    #[test]
    fn p90_best_can_differ_from_p10_best() {
        // Path A: low baseline but huge spikes; path B: higher baseline, flat.
        let mut t = tl(&[(2, 50.0, 8)]);
        let path_b = AsPath::from_asns([Asn::new(1), Asn::new(3), Asn::new(9)]);
        t.paths.push(path_b);
        let mut minute = 8 * 180;
        for i in 0..8 {
            // Path A's spikes: half the samples at 300ms.
            t.samples.push(Sample {
                t: SimTime::from_minutes(minute),
                path: Some(0),
                rtt_ms: Some(if i % 2 == 0 { 300.0 } else { 50.0 }),
            });
            minute += 180;
        }
        for _ in 0..8 {
            t.samples.push(Sample {
                t: SimTime::from_minutes(minute),
                path: Some(1),
                rtt_ms: Some(70.0),
            });
            minute += 180;
        }
        let a = best_path_analysis(&t, SimDuration::from_hours(3)).unwrap();
        assert_eq!(a.best_by_p10, 0, "A has the lower baseline");
        assert_eq!(a.best_by_p90, 1, "B has the lower spikes");
    }

    #[test]
    fn suboptimal_prevalence_respects_threshold() {
        let t = tl(&[(2, 50.0, 6), (3, 80.0, 2), (4, 160.0, 2)]);
        let iv = SimDuration::from_hours(3);
        // Both sub-optimal paths exceed 20ms.
        assert!((suboptimal_prevalence(&t, iv, 20.0) - 0.4).abs() < 1e-9);
        // Only the 160ms path exceeds 100ms (delta ~110).
        assert!((suboptimal_prevalence(&t, iv, 100.0) - 0.2).abs() < 1e-9);
        // Nothing exceeds 200ms.
        assert_eq!(suboptimal_prevalence(&t, iv, 200.0), 0.0);
    }

    #[test]
    fn pathless_rtts_are_ignored() {
        let mut t = tl(&[(2, 50.0, 5), (3, 90.0, 5)]);
        t.samples.push(Sample {
            t: SimTime::from_minutes(99_999),
            path: None,
            rtt_ms: None,
        });
        assert!(best_path_analysis(&t, SimDuration::from_hours(3)).is_some());
    }
}
