//! Routing-change detection, lifetimes, and prevalence (§4.1–4.2).
//!
//! * a *routing change* is a non-zero edit distance between the AS paths of
//!   two consecutive usable samples (Fig. 3b),
//! * a path's *lifetime* is the total time it was observed (samples ×
//!   sampling interval — the paper assumes each observation persists until
//!   the next),
//! * a path's *prevalence* is its lifetime as a fraction of the timeline's
//!   usable time (Fig. 3a, after Paxson),
//! * forward/reverse *AS-path pairs* (Fig. 2b) pair the paths seen in both
//!   directions at the same instant.

use crate::timeline::TraceTimeline;
use s2s_stats::edit_distance;
use s2s_types::{AnalysisError, Coverage, SimDuration};
use std::collections::HashSet;

/// Per-timeline routing-change statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ChangeStats {
    /// Number of routing changes (consecutive-sample path differences).
    pub changes: usize,
    /// Edit distance of each change.
    pub magnitudes: Vec<usize>,
}

/// Detects routing changes on a timeline. Pathless samples (incomplete or
/// loop-filtered traceroutes) are skipped, exactly as the paper drops them.
pub fn detect_changes(tl: &TraceTimeline) -> ChangeStats {
    let mut changes = 0;
    let mut magnitudes = Vec::new();
    let mut prev: Option<u16> = None;
    for s in &tl.samples {
        let Some(p) = s.path else { continue };
        if let Some(q) = prev {
            if p != q {
                let d = edit_distance(
                    &tl.paths[q as usize].symbols(),
                    &tl.paths[p as usize].symbols(),
                );
                // Distinct interned paths always differ, but guard anyway.
                if d > 0 {
                    changes += 1;
                    magnitudes.push(d);
                }
            }
        }
        prev = Some(p);
    }
    ChangeStats { changes, magnitudes }
}

/// Coverage-checked [`detect_changes`]: accepts a gap-bearing timeline —
/// one measured under a faulty plane, where lost slots appear as pathless
/// samples — annotates the result with how much of the offered schedule
/// was usable, and refuses with a typed error (never a panic) when the
/// usable fraction is below `min_coverage`.
///
/// The floor matters here because change detection compares *consecutive
/// usable* samples: every gap widens the comparison window, so a sparse
/// timeline undercounts short-lived changes. Refusing is the honest
/// answer below the caller's floor.
pub fn detect_changes_checked(
    tl: &TraceTimeline,
    min_coverage: f64,
) -> Result<(ChangeStats, Coverage), AnalysisError> {
    let coverage = tl.coverage();
    coverage.require(min_coverage)?;
    Ok((detect_changes(tl), coverage))
}

/// Per-path lifetime and prevalence statistics of one timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct PathStats {
    /// Lifetime of each interned path.
    pub lifetimes: Vec<SimDuration>,
    /// Prevalence (0–1) of each interned path.
    pub prevalence: Vec<f64>,
    /// Index of the most prevalent ("popular") path, if any.
    pub popular: Option<usize>,
}

/// Computes lifetimes and prevalence given the sampling interval.
pub fn path_stats(tl: &TraceTimeline, interval: SimDuration) -> PathStats {
    let counts = tl.path_sample_counts();
    let total: usize = counts.iter().sum();
    let lifetimes: Vec<SimDuration> = counts
        .iter()
        .map(|&c| SimDuration::from_minutes(c as u32 * interval.minutes()))
        .collect();
    let prevalence: Vec<f64> = counts
        .iter()
        .map(|&c| if total == 0 { 0.0 } else { c as f64 / total as f64 })
        .collect();
    let popular = (0..counts.len()).max_by_key(|&i| counts[i]);
    PathStats { lifetimes, prevalence, popular }
}

/// Coverage-checked [`path_stats`]: like [`detect_changes_checked`], for
/// lifetime/prevalence analysis. Lifetimes are computed from usable
/// samples only, so under gaps they are lower bounds; the returned
/// [`Coverage`] quantifies how loose.
pub fn path_stats_checked(
    tl: &TraceTimeline,
    interval: SimDuration,
    min_coverage: f64,
) -> Result<(PathStats, Coverage), AnalysisError> {
    let coverage = tl.coverage();
    coverage.require(min_coverage)?;
    Ok((path_stats(tl, interval), coverage))
}

/// Counts the distinct forward/reverse AS-path pairs between two timelines
/// of the same server pair (Fig. 2b). Samples pair by timestamp; instants
/// where either direction is unusable are skipped.
pub fn as_path_pairs(fwd: &TraceTimeline, rev: &TraceTimeline) -> usize {
    let mut pairs: HashSet<(u16, u16)> = HashSet::new();
    let mut ri = 0;
    for s in &fwd.samples {
        while ri < rev.samples.len() && rev.samples[ri].t < s.t {
            ri += 1;
        }
        if ri >= rev.samples.len() {
            break;
        }
        if rev.samples[ri].t == s.t {
            if let (Some(f), Some(r)) = (s.path, rev.samples[ri].path) {
                pairs.insert((f, r));
            }
        }
    }
    pairs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Sample;
    use s2s_types::{Asn, AsPath, ClusterId, Protocol, SimTime};

    fn tl(paths: Vec<AsPath>, seq: &[Option<u16>]) -> TraceTimeline {
        TraceTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            paths,
            samples: seq
                .iter()
                .enumerate()
                .map(|(i, &p)| Sample {
                    t: SimTime::from_minutes(i as u32 * 180),
                    path: p,
                    rtt_ms: p.map(|_| 50.0),
                })
                .collect(),
            counts: Default::default(),
        }
    }

    fn p(asns: &[u32]) -> AsPath {
        AsPath::from_asns(asns.iter().map(|&a| Asn::new(a)))
    }

    #[test]
    fn no_change_on_stable_path() {
        let t = tl(vec![p(&[1, 2, 3])], &[Some(0), Some(0), Some(0)]);
        let c = detect_changes(&t);
        assert_eq!(c.changes, 0);
        assert!(c.magnitudes.is_empty());
    }

    #[test]
    fn change_counted_with_magnitude() {
        // 1-2-3 -> 1-3 is one hop removal: edit distance 1.
        let t = tl(vec![p(&[1, 2, 3]), p(&[1, 3])], &[Some(0), Some(1), Some(0)]);
        let c = detect_changes(&t);
        assert_eq!(c.changes, 2);
        assert_eq!(c.magnitudes, vec![1, 1]);
    }

    #[test]
    fn pathless_samples_are_skipped_not_changes() {
        let t = tl(vec![p(&[1, 2])], &[Some(0), None, Some(0), None]);
        assert_eq!(detect_changes(&t).changes, 0);
    }

    #[test]
    fn flapping_counts_every_flip() {
        let t = tl(
            vec![p(&[1, 2]), p(&[1, 3, 2])],
            &[Some(0), Some(1), Some(0), Some(1), Some(0)],
        );
        let c = detect_changes(&t);
        assert_eq!(c.changes, 4);
        assert!(c.magnitudes.iter().all(|&m| m == 1));
    }

    #[test]
    fn lifetimes_and_prevalence() {
        let t = tl(
            vec![p(&[1, 2]), p(&[1, 3, 2])],
            &[Some(0), Some(0), Some(0), Some(1)],
        );
        let s = path_stats(&t, SimDuration::from_hours(3));
        assert_eq!(s.lifetimes[0], SimDuration::from_hours(9));
        assert_eq!(s.lifetimes[1], SimDuration::from_hours(3));
        assert_eq!(s.prevalence, vec![0.75, 0.25]);
        assert_eq!(s.popular, Some(0));
    }

    #[test]
    fn empty_timeline_stats() {
        let t = tl(vec![], &[None, None]);
        let s = path_stats(&t, SimDuration::from_hours(3));
        assert!(s.lifetimes.is_empty());
        assert_eq!(s.popular, None);
        assert_eq!(detect_changes(&t).changes, 0);
    }

    #[test]
    fn checked_variants_annotate_coverage() {
        // 3 usable of 5 offered: a degraded timeline, 60% coverage.
        let t = tl(vec![p(&[1, 2]), p(&[1, 3])], &[Some(0), None, Some(1), None, Some(0)]);
        let (stats, cov) = detect_changes_checked(&t, 0.5).unwrap();
        assert_eq!(stats, detect_changes(&t), "gaps must not change the verdict");
        assert_eq!((cov.usable, cov.offered), (3, 5));
        let (ps, cov) = path_stats_checked(&t, SimDuration::from_hours(3), 0.5).unwrap();
        assert_eq!(ps, path_stats(&t, SimDuration::from_hours(3)));
        assert!((cov.fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn checked_variants_refuse_below_floor_without_panicking() {
        let t = tl(vec![p(&[1, 2])], &[Some(0), None, None, None]);
        let err = detect_changes_checked(&t, 0.5).unwrap_err();
        match err {
            s2s_types::AnalysisError::InsufficientCoverage { coverage, min_fraction } => {
                assert_eq!((coverage.usable, coverage.offered), (1, 4));
                assert_eq!(min_fraction, 0.5);
            }
            other => panic!("wrong refusal: {other}"),
        }
        assert!(path_stats_checked(&t, SimDuration::from_hours(3), 0.9).is_err());
        // A zero floor always accepts — even a fully lost timeline.
        let dead = tl(vec![], &[None, None]);
        assert!(detect_changes_checked(&dead, 0.0).is_ok());
    }

    #[test]
    fn path_pairs_match_by_timestamp() {
        let fwd = tl(vec![p(&[1, 2]), p(&[1, 3])], &[Some(0), Some(1), Some(0)]);
        let rev = tl(vec![p(&[2, 1])], &[Some(0), Some(0), Some(0)]);
        // Pairs: (0,0), (1,0), (0,0) -> 2 distinct.
        assert_eq!(as_path_pairs(&fwd, &rev), 2);
    }

    #[test]
    fn path_pairs_skip_unusable_instants() {
        let fwd = tl(vec![p(&[1, 2])], &[Some(0), Some(0)]);
        let rev = tl(vec![p(&[2, 1])], &[None, Some(0)]);
        assert_eq!(as_path_pairs(&fwd, &rev), 1);
    }

    #[test]
    fn path_pairs_with_disjoint_times() {
        let fwd = tl(vec![p(&[1])], &[Some(0)]);
        let mut rev = tl(vec![p(&[1])], &[Some(0)]);
        rev.samples[0].t = SimTime::from_minutes(90); // offset: no match
        assert_eq!(as_path_pairs(&fwd, &rev), 0);
    }
}
