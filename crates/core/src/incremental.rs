//! Epoch-incremental analysis state: the live-service counterpart of the
//! batch §4 analyses.
//!
//! A batch [`Analysis`](crate::Analysis) answers questions by recomputing
//! over the whole corpus. [`IncrementalState`] instead *folds*: each epoch
//! delta (a [`TraceStore`] holding the traces measured since the last
//! update) appends into
//!
//! * the streaming timelines fold (`columnar::StreamingTimelines`) — the
//!   same group-in-first-seen-order, paths-interned-per-group structure
//!   the materialized driver builds, and
//! * per-group appendable state ([`ChangeLog`], [`PrevalenceTally`] from
//!   `s2s-stats`) kept exactly in step via the per-sample absorb hook —
//!   so edit-distance change detection and route prevalence are already
//!   folded when a query arrives, in O(pair state) instead of O(corpus).
//!
//! The contract, pinned by `tests/tests/incremental_equivalence.rs` across
//! seeds × fault profiles × thread counts: for **any** split of a corpus
//! into deltas, the incremental timelines are byte-identical to one batch
//! [`Analysis::timelines`](crate::Analysis::timelines) over the
//! concatenation, and the folded change/prevalence verdicts are
//! byte-identical to the batch recompute
//! ([`detect_changes`](crate::changes::detect_changes) /
//! [`path_stats`](crate::changes::path_stats)) over those timelines.

use crate::changes::{ChangeStats, PathStats};
use crate::columnar::{AddrAsnTable, ColumnarAnnotator, StreamingTimelines};
use crate::timeline::TraceTimeline;
use s2s_bgp::Ip2AsnMap;
use s2s_probe::TraceStore;
use s2s_stats::{ChangeLog, PrevalenceTally};
use s2s_types::SimDuration;

/// Per-group appendable verdict state, kept parallel to the timelines.
#[derive(Clone, Debug, Default)]
struct PairFold {
    changes: ChangeLog<u64>,
    tally: PrevalenceTally,
}

/// The live analysis state an always-on service carries between epochs.
///
/// Wrap it in the builder — `Analysis::new(IncrementalState::new())` —
/// and feed deltas through [`Analysis::update`](crate::Analysis::update);
/// query through the `Analysis` accessors. The state is also an
/// [`AnalysisSource`](crate::AnalysisSource): the "live service state"
/// row of the source matrix.
#[derive(Clone, Debug, Default)]
pub struct IncrementalState {
    stream: StreamingTimelines,
    folds: Vec<PairFold>,
    samples: u64,
}

impl IncrementalState {
    /// Empty state: no epochs folded yet.
    pub fn new() -> IncrementalState {
        IncrementalState { stream: StreamingTimelines::new(), folds: Vec::new(), samples: 0 }
    }

    /// Folds one epoch delta in. Annotation is content-based (the
    /// per-delta address table resolves to the same ASNs any other
    /// partition of the corpus would), so the folded state after N updates
    /// depends only on the concatenated trace stream, never on where the
    /// delta boundaries fell.
    pub(crate) fn absorb(&mut self, delta: &TraceStore, map: &Ip2AsnMap) {
        let table = AddrAsnTable::build(delta, map);
        let mut ann = ColumnarAnnotator::new(&table);
        let folds = &mut self.folds;
        self.stream.absorb_batch_with(delta, &mut ann, |gi, tl| {
            if folds.len() <= gi {
                folds.resize_with(gi + 1, PairFold::default);
            }
            let s = tl.samples.last().expect("hook fires after a sample push");
            if let Some(p) = s.path {
                let fold = &mut folds[gi];
                fold.changes.observe(&tl.paths[p as usize].symbols());
                fold.tally.observe(p as usize);
            }
        });
        self.samples += delta.len() as u64;
    }

    /// The timelines folded so far — one per (src, dst, protocol) group in
    /// first-seen order, byte-identical to the batch driver over the same
    /// trace stream.
    pub fn timelines(&self) -> &[TraceTimeline] {
        self.stream.timelines()
    }

    /// Number of (src, dst, protocol) groups seen.
    pub fn len(&self) -> usize {
        self.stream.timelines().len()
    }

    /// Whether any trace has been folded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total samples folded across all updates.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The group index of a (src, dst, protocol) triple, scanning the
    /// first-seen group list — O(groups), never O(samples). `None` if no
    /// trace for the triple has been folded yet.
    pub fn group_index(
        &self,
        src: s2s_types::ClusterId,
        dst: s2s_types::ClusterId,
        proto: s2s_types::Protocol,
    ) -> Option<usize> {
        self.timelines()
            .iter()
            .position(|tl| tl.src == src && tl.dst == dst && tl.proto == proto)
    }

    /// The folded change verdict of group `gi` — O(pair state), equal to
    /// `detect_changes(&self.timelines()[gi])`.
    pub fn change_stats_of(&self, gi: usize) -> ChangeStats {
        let f = &self.folds[gi];
        ChangeStats { changes: f.changes.changes(), magnitudes: f.changes.magnitudes().to_vec() }
    }

    /// The folded lifetime/prevalence verdict of group `gi` — O(paths),
    /// equal to `path_stats(&self.timelines()[gi], interval)`.
    pub fn path_stats_of(&self, gi: usize, interval: SimDuration) -> PathStats {
        let f = &self.folds[gi];
        let lifetimes = f
            .tally
            .counts()
            .iter()
            .map(|&c| SimDuration::from_minutes(c as u32 * interval.minutes()))
            .collect();
        PathStats { lifetimes, prevalence: f.tally.prevalence(), popular: f.tally.popular() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::{detect_changes, path_stats};
    use crate::Analysis;
    use s2s_probe::{HopObs, TracerouteRecord};
    use s2s_types::{Asn, ClusterId, IpNet, Ipv4Net, Protocol, SimTime};
    use std::net::Ipv4Addr;

    fn map() -> Ip2AsnMap {
        let anns = vec![
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 1, 0, 0), 16)), Asn::new(100)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 2, 0, 0), 16)), Asn::new(200)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 3, 0, 0), 16)), Asn::new(300)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 4, 0, 0), 16)), Asn::new(400)),
        ];
        Ip2AsnMap::from_announcements(&anns)
    }

    fn rec(src: u32, dst: u32, t: u32, addrs: &[Option<&str>], reached: bool) -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(src),
            dst: ClusterId::new(dst),
            proto: Protocol::V4,
            t: SimTime::from_minutes(t),
            hops: addrs
                .iter()
                .map(|a| HopObs { addr: a.map(|s| s.parse().unwrap()), rtt_ms: a.map(|_| 1.0) })
                .collect(),
            reached,
            e2e_rtt_ms: reached.then_some(50.0),
            src_addr: Some("10.1.0.200".parse().unwrap()),
            dst_addr: reached.then(|| "10.3.0.9".parse().unwrap()),
        }
    }

    /// Two interleaved pairs with path changes, gaps, and an unreached
    /// trace — enough to exercise every fold branch.
    fn corpus() -> Vec<TracerouteRecord> {
        vec![
            rec(0, 1, 0, &[Some("10.1.0.1"), Some("10.2.0.1")], true),
            rec(2, 3, 0, &[Some("10.2.0.7"), Some("10.3.0.1")], true),
            // The dst AS (300, from dst_addr) is appended to every path, so
            // the detour must avoid 300 or the path would loop and be
            // excluded: flip through ASN 400 instead.
            rec(0, 1, 180, &[Some("10.1.0.1"), Some("10.4.0.2"), Some("10.2.0.1")], true),
            rec(2, 3, 180, &[Some("10.2.0.7")], false),
            rec(0, 1, 360, &[Some("10.1.0.1"), Some("10.2.0.1")], true),
            rec(2, 3, 360, &[Some("10.2.0.7"), Some("10.3.0.1")], true),
            rec(0, 1, 540, &[Some("10.1.0.1"), Some("10.2.0.1")], true),
        ]
    }

    #[test]
    fn any_split_matches_the_batch_analysis() {
        let m = map();
        let recs = corpus();
        let store = TraceStore::from_records(&recs);
        let batch = Analysis::new(&store).threads(2).timelines(&m);
        for split in 1..=recs.len() {
            let mut a = Analysis::new(IncrementalState::new());
            for chunk in recs.chunks(split) {
                a.update(&TraceStore::from_records(chunk), &m);
            }
            assert_eq!(a.timelines(), &batch[..], "split={split} diverged");
            assert_eq!(
                format!("{:?}", a.timelines()),
                format!("{batch:?}"),
                "split={split} byte divergence"
            );
        }
    }

    #[test]
    fn folded_verdicts_equal_batch_recompute() {
        let m = map();
        let recs = corpus();
        let interval = SimDuration::from_hours(3);
        let mut a = Analysis::new(IncrementalState::new());
        for chunk in recs.chunks(2) {
            a.update(&TraceStore::from_records(chunk), &m);
        }
        let tls = a.timelines().to_vec();
        assert_eq!(a.change_stats(), tls.iter().map(detect_changes).collect::<Vec<_>>());
        assert_eq!(
            a.path_stats(interval),
            tls.iter().map(|tl| path_stats(tl, interval)).collect::<Vec<_>>()
        );
        // The 0→1 timeline saw 2 changes (path flip out and back).
        let c = &a.change_stats()[0];
        assert_eq!((c.changes, c.magnitudes.as_slice()), (2, &[1, 1][..]));
    }

    #[test]
    fn empty_state_is_well_defined() {
        let a = Analysis::new(IncrementalState::new());
        assert!(a.timelines().is_empty());
        assert!(a.change_stats().is_empty());
        assert!(a.path_stats(SimDuration::from_hours(3)).is_empty());
        assert!(a.source().is_empty());
        assert_eq!(a.source().samples(), 0);
    }
}
