//! Short-term cadence robustness (§4.3, Fig. 7).
//!
//! The long-term data set samples every 3 hours; routing changes faster
//! than that are invisible. The paper checks the impact by re-running the
//! best-path delta analysis on 30-minute data twice: once with every
//! traceroute ("All") and once keeping only samples at least 3 hours apart
//! ("3hr"). Similar ECDFs mean the coarse cadence doesn't bias §4.2.

use crate::bestpath::best_path_analysis;
use crate::timeline::TraceTimeline;
use s2s_types::{SimDuration, SimTime};

/// Keeps only samples spaced at least `min_gap` apart (first sample kept).
pub fn subsample(tl: &TraceTimeline, min_gap: SimDuration) -> TraceTimeline {
    let mut out = tl.clone();
    out.samples.clear();
    let mut last: Option<SimTime> = None;
    for s in &tl.samples {
        let keep = match last {
            None => true,
            Some(prev) => (s.t - prev).minutes() >= min_gap.minutes(),
        };
        if keep {
            out.samples.push(*s);
            last = Some(s.t);
        }
    }
    // Drop paths that no longer appear, remapping indices.
    let mut used: Vec<bool> = vec![false; tl.paths.len()];
    for s in &out.samples {
        if let Some(p) = s.path {
            used[p as usize] = true;
        }
    }
    let mut remap: Vec<Option<u16>> = vec![None; tl.paths.len()];
    let mut new_paths = Vec::new();
    for (i, u) in used.iter().enumerate() {
        if *u {
            remap[i] = Some(new_paths.len() as u16);
            new_paths.push(tl.paths[i].clone());
        }
    }
    out.paths = new_paths;
    for s in &mut out.samples {
        s.path = s.path.and_then(|p| remap[p as usize]);
    }
    out
}

/// The Fig. 7 comparison for one set of timelines: best-path deltas
/// computed on all samples and on the 3-hour subsample.
#[derive(Clone, Debug, Default)]
pub struct CadenceComparison {
    /// Δ10th-percentile values using every sample.
    pub p10_all: Vec<f64>,
    /// Δ10th-percentile values using the subsample.
    pub p10_sub: Vec<f64>,
    /// Δ90th-percentile values using every sample.
    pub p90_all: Vec<f64>,
    /// Δ90th-percentile values using the subsample.
    pub p90_sub: Vec<f64>,
}

impl CadenceComparison {
    /// Folds one timeline into the comparison.
    ///
    /// `interval` is the native cadence; `gap` the subsampling spacing
    /// (3 hours in the paper).
    pub fn add(&mut self, tl: &TraceTimeline, interval: SimDuration, gap: SimDuration) {
        if let Some(a) = best_path_analysis(tl, interval) {
            for d in &a.deltas {
                self.p10_all.push(d.delta_p10_ms);
                self.p90_all.push(d.delta_p90_ms);
            }
        }
        let sub = subsample(tl, gap);
        if let Some(a) = best_path_analysis(&sub, gap) {
            for d in &a.deltas {
                self.p10_sub.push(d.delta_p10_ms);
                self.p90_sub.push(d.delta_p90_ms);
            }
        }
    }

    /// Kolmogorov–Smirnov-style max ECDF gap between the All and 3hr Δ10th
    /// distributions — small values back the paper's "very small
    /// difference" claim.
    pub fn p10_ecdf_gap(&self) -> Option<f64> {
        ecdf_gap(&self.p10_all, &self.p10_sub)
    }

    /// Max ECDF gap between the All and 3hr Δ90th distributions.
    pub fn p90_ecdf_gap(&self) -> Option<f64> {
        ecdf_gap(&self.p90_all, &self.p90_sub)
    }
}

fn ecdf_gap(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let ea = s2s_stats::Ecdf::new(a.to_vec());
    let eb = s2s_stats::Ecdf::new(b.to_vec());
    let mut gap: f64 = 0.0;
    for &x in ea.sorted().iter().chain(eb.sorted()) {
        gap = gap.max((ea.fraction_at_or_below(x) - eb.fraction_at_or_below(x)).abs());
    }
    Some(gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Sample;
    use s2s_types::{Asn, AsPath, ClusterId, Protocol};

    fn tl_30min(seq: &[(u16, f64)]) -> TraceTimeline {
        let paths: Vec<AsPath> = (0..3)
            .map(|i| AsPath::from_asns([Asn::new(1), Asn::new(10 + i), Asn::new(9)]))
            .collect();
        TraceTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            paths,
            samples: seq
                .iter()
                .enumerate()
                .map(|(i, &(p, r))| Sample {
                    t: SimTime::from_minutes(i as u32 * 30),
                    path: Some(p),
                    rtt_ms: Some(r as f32),
                })
                .collect(),
            counts: Default::default(),
        }
    }

    #[test]
    fn subsample_keeps_three_hour_spacing() {
        let t = tl_30min(&(0..24).map(|i| (0u16, 50.0 + i as f64)).collect::<Vec<_>>());
        let sub = subsample(&t, SimDuration::from_hours(3));
        assert_eq!(sub.samples.len(), 4); // minutes 0, 180, 360, 540
        for w in sub.samples.windows(2) {
            assert!((w[1].t - w[0].t).minutes() >= 180);
        }
    }

    #[test]
    fn subsample_remaps_paths() {
        // Path 1 appears only at odd 30-minute slots; a 3h subsample keeps
        // slots 0, 6, 12 (all path 0), so path 1 must vanish.
        let seq: Vec<(u16, f64)> =
            (0..18).map(|i| ((i % 2) as u16, 50.0)).collect();
        let t = tl_30min(&seq);
        let sub = subsample(&t, SimDuration::from_hours(3));
        assert_eq!(sub.paths.len(), 1);
        assert!(sub.samples.iter().all(|s| s.path == Some(0)));
    }

    #[test]
    fn subsample_of_sparse_timeline_is_identity() {
        let mut t = tl_30min(&[(0, 50.0), (1, 80.0)]);
        // Space the two samples 6h apart.
        t.samples[1].t = SimTime::from_hours(6);
        let sub = subsample(&t, SimDuration::from_hours(3));
        assert_eq!(sub.samples.len(), 2);
        assert_eq!(sub.paths.len(), 2);
    }

    #[test]
    fn comparison_sees_similar_distributions_for_slow_dynamics() {
        // Paths change on multi-hour scales: All vs 3hr should agree.
        let mut comp = CadenceComparison::default();
        for k in 0..30 {
            let seq: Vec<(u16, f64)> = (0..96)
                .map(|i| {
                    // Switch path every 24 slots (12 hours).
                    let p = ((i / 24) % 2) as u16;
                    (p, if p == 0 { 50.0 } else { 80.0 + k as f64 })
                })
                .collect();
            comp.add(
                &tl_30min(&seq),
                SimDuration::from_minutes(30),
                SimDuration::from_hours(3),
            );
        }
        let gap = comp.p10_ecdf_gap().unwrap();
        assert!(gap < 0.25, "gap = {gap}");
    }

    #[test]
    fn fast_flapping_is_visible_in_the_gap_machinery() {
        // Flapping every 30 minutes: the 3h subsample sees only one path,
        // so the sub distribution loses entries; the machinery still works.
        let mut comp = CadenceComparison::default();
        let seq: Vec<(u16, f64)> = (0..96)
            .map(|i| ((i % 2) as u16, if i % 2 == 0 { 50.0 } else { 90.0 }))
            .collect();
        comp.add(
            &tl_30min(&seq),
            SimDuration::from_minutes(30),
            SimDuration::from_hours(3),
        );
        assert_eq!(comp.p10_all.len(), 1);
        // Subsample kept slots 0,6,12,... — all path 0 → single-path, no delta.
        assert!(comp.p10_sub.is_empty());
        assert!(comp.p10_ecdf_gap().is_none());
    }

    #[test]
    fn ecdf_gap_zero_for_identical() {
        let comp = CadenceComparison {
            p10_all: vec![1.0, 2.0, 3.0],
            p10_sub: vec![1.0, 2.0, 3.0],
            ..Default::default()
        };
        assert_eq!(comp.p10_ecdf_gap(), Some(0.0));
    }

    #[test]
    fn ecdf_gap_large_for_disjoint() {
        let comp = CadenceComparison {
            p90_all: vec![1.0, 2.0],
            p90_sub: vec![100.0, 200.0],
            ..Default::default()
        };
        assert_eq!(comp.p90_ecdf_gap(), Some(1.0));
    }
}
