//! Short-term analyses: cadence robustness (§4.3, Fig. 7) and the
//! streamed busy-period shape of a pair's day (§5).
//!
//! The long-term data set samples every 3 hours; routing changes faster
//! than that are invisible. The paper checks the impact by re-running the
//! best-path delta analysis on 30-minute data twice: once with every
//! traceroute ("All") and once keeping only samples at least 3 hours apart
//! ("3hr"). Similar ECDFs mean the coarse cadence doesn't bias §4.2.
//!
//! The §5 congestion analyses additionally care *when* in the day a pair
//! is slow: consistent congestion shows up as a daily busy period.
//! [`diurnal_shape`] reads that structure straight from the fixed-bin
//! time-of-day ring a streaming campaign folds
//! ([`DiurnalProfile`], inside each
//! [`PairProfile`]) — no materialized timeline
//! needed.

use crate::bestpath::best_path_analysis;
use crate::timeline::TraceTimeline;
use s2s_probe::PairProfile;
use s2s_stats::DiurnalProfile;
use s2s_types::{AnalysisError, Coverage, SimDuration, SimTime};

/// Keeps only samples spaced at least `min_gap` apart (first sample kept).
pub fn subsample(tl: &TraceTimeline, min_gap: SimDuration) -> TraceTimeline {
    let mut out = tl.clone();
    out.samples.clear();
    let mut last: Option<SimTime> = None;
    for s in &tl.samples {
        let keep = match last {
            None => true,
            Some(prev) => (s.t - prev).minutes() >= min_gap.minutes(),
        };
        if keep {
            out.samples.push(*s);
            last = Some(s.t);
        }
    }
    // Drop paths that no longer appear, remapping indices.
    let mut used: Vec<bool> = vec![false; tl.paths.len()];
    for s in &out.samples {
        if let Some(p) = s.path {
            used[p as usize] = true;
        }
    }
    let mut remap: Vec<Option<u16>> = vec![None; tl.paths.len()];
    let mut new_paths = Vec::new();
    for (i, u) in used.iter().enumerate() {
        if *u {
            remap[i] = Some(new_paths.len() as u16);
            new_paths.push(tl.paths[i].clone());
        }
    }
    out.paths = new_paths;
    for s in &mut out.samples {
        s.path = s.path.and_then(|p| remap[p as usize]);
    }
    out
}

/// The Fig. 7 comparison for one set of timelines: best-path deltas
/// computed on all samples and on the 3-hour subsample.
#[derive(Clone, Debug, Default)]
pub struct CadenceComparison {
    /// Δ10th-percentile values using every sample.
    pub p10_all: Vec<f64>,
    /// Δ10th-percentile values using the subsample.
    pub p10_sub: Vec<f64>,
    /// Δ90th-percentile values using every sample.
    pub p90_all: Vec<f64>,
    /// Δ90th-percentile values using the subsample.
    pub p90_sub: Vec<f64>,
}

impl CadenceComparison {
    /// Folds one timeline into the comparison.
    ///
    /// `interval` is the native cadence; `gap` the subsampling spacing
    /// (3 hours in the paper).
    pub fn add(&mut self, tl: &TraceTimeline, interval: SimDuration, gap: SimDuration) {
        if let Some(a) = best_path_analysis(tl, interval) {
            for d in &a.deltas {
                self.p10_all.push(d.delta_p10_ms);
                self.p90_all.push(d.delta_p90_ms);
            }
        }
        let sub = subsample(tl, gap);
        if let Some(a) = best_path_analysis(&sub, gap) {
            for d in &a.deltas {
                self.p10_sub.push(d.delta_p10_ms);
                self.p90_sub.push(d.delta_p90_ms);
            }
        }
    }

    /// Kolmogorov–Smirnov-style max ECDF gap between the All and 3hr Δ10th
    /// distributions — small values back the paper's "very small
    /// difference" claim.
    pub fn p10_ecdf_gap(&self) -> Option<f64> {
        ecdf_gap(&self.p10_all, &self.p10_sub)
    }

    /// Max ECDF gap between the All and 3hr Δ90th distributions.
    pub fn p90_ecdf_gap(&self) -> Option<f64> {
        ecdf_gap(&self.p90_all, &self.p90_sub)
    }
}

/// The busy-period shape of one pair's day, from its time-of-day ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiurnalShape {
    /// Ring slot with the highest mean RTT (0 = the slot at midnight).
    pub peak_slot: usize,
    /// Mean RTT in the peak slot, ms.
    pub peak_mean_ms: f64,
    /// Max − min of the slot means, ms (the daily swing).
    pub amplitude_ms: f64,
    /// Fraction of populated slots whose mean sits in the upper half of
    /// the swing — narrow busy-hour bumps score low, all-day elevation
    /// scores high.
    pub busy_fraction: f64,
}

/// Reads the daily busy-period shape from a streamed time-of-day ring.
/// `None` when no slot has any samples.
pub fn diurnal_shape(ring: &DiurnalProfile) -> Option<DiurnalShape> {
    let peak_slot = ring.peak_bin()?;
    let peak_mean_ms = ring.bin_mean(peak_slot)?;
    let amplitude_ms = ring.amplitude()?;
    let means: Vec<f64> = ring.means().into_iter().flatten().collect();
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let midpoint = lo + amplitude_ms / 2.0;
    let busy = means.iter().filter(|&&m| m >= midpoint).count();
    Some(DiurnalShape {
        peak_slot,
        peak_mean_ms,
        amplitude_ms,
        busy_fraction: busy as f64 / means.len() as f64,
    })
}

/// Coverage-checked [`diurnal_shape`] over a full streamed profile:
/// annotates the shape with the profile's delivered-over-offered coverage
/// and refuses with a typed error below `min_coverage`.
pub fn diurnal_shape_checked(
    profile: &PairProfile,
    min_coverage: f64,
) -> Result<(DiurnalShape, Coverage), AnalysisError> {
    let coverage = profile.coverage();
    coverage.require(min_coverage)?;
    diurnal_shape(profile.diurnal())
        .map(|shape| (shape, coverage))
        .ok_or(AnalysisError::NoUsableData)
}

fn ecdf_gap(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let ea = s2s_stats::Ecdf::new(a.to_vec());
    let eb = s2s_stats::Ecdf::new(b.to_vec());
    let mut gap: f64 = 0.0;
    for &x in ea.sorted().iter().chain(eb.sorted()) {
        gap = gap.max((ea.fraction_at_or_below(x) - eb.fraction_at_or_below(x)).abs());
    }
    Some(gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Sample;
    use s2s_types::{Asn, AsPath, ClusterId, Protocol};

    fn tl_30min(seq: &[(u16, f64)]) -> TraceTimeline {
        let paths: Vec<AsPath> = (0..3)
            .map(|i| AsPath::from_asns([Asn::new(1), Asn::new(10 + i), Asn::new(9)]))
            .collect();
        TraceTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            paths,
            samples: seq
                .iter()
                .enumerate()
                .map(|(i, &(p, r))| Sample {
                    t: SimTime::from_minutes(i as u32 * 30),
                    path: Some(p),
                    rtt_ms: Some(r as f32),
                })
                .collect(),
            counts: Default::default(),
        }
    }

    #[test]
    fn subsample_keeps_three_hour_spacing() {
        let t = tl_30min(&(0..24).map(|i| (0u16, 50.0 + i as f64)).collect::<Vec<_>>());
        let sub = subsample(&t, SimDuration::from_hours(3));
        assert_eq!(sub.samples.len(), 4); // minutes 0, 180, 360, 540
        for w in sub.samples.windows(2) {
            assert!((w[1].t - w[0].t).minutes() >= 180);
        }
    }

    #[test]
    fn subsample_remaps_paths() {
        // Path 1 appears only at odd 30-minute slots; a 3h subsample keeps
        // slots 0, 6, 12 (all path 0), so path 1 must vanish.
        let seq: Vec<(u16, f64)> =
            (0..18).map(|i| ((i % 2) as u16, 50.0)).collect();
        let t = tl_30min(&seq);
        let sub = subsample(&t, SimDuration::from_hours(3));
        assert_eq!(sub.paths.len(), 1);
        assert!(sub.samples.iter().all(|s| s.path == Some(0)));
    }

    #[test]
    fn subsample_of_sparse_timeline_is_identity() {
        let mut t = tl_30min(&[(0, 50.0), (1, 80.0)]);
        // Space the two samples 6h apart.
        t.samples[1].t = SimTime::from_hours(6);
        let sub = subsample(&t, SimDuration::from_hours(3));
        assert_eq!(sub.samples.len(), 2);
        assert_eq!(sub.paths.len(), 2);
    }

    #[test]
    fn comparison_sees_similar_distributions_for_slow_dynamics() {
        // Paths change on multi-hour scales: All vs 3hr should agree.
        let mut comp = CadenceComparison::default();
        for k in 0..30 {
            let seq: Vec<(u16, f64)> = (0..96)
                .map(|i| {
                    // Switch path every 24 slots (12 hours).
                    let p = ((i / 24) % 2) as u16;
                    (p, if p == 0 { 50.0 } else { 80.0 + k as f64 })
                })
                .collect();
            comp.add(
                &tl_30min(&seq),
                SimDuration::from_minutes(30),
                SimDuration::from_hours(3),
            );
        }
        let gap = comp.p10_ecdf_gap().unwrap();
        assert!(gap < 0.25, "gap = {gap}");
    }

    #[test]
    fn fast_flapping_is_visible_in_the_gap_machinery() {
        // Flapping every 30 minutes: the 3h subsample sees only one path,
        // so the sub distribution loses entries; the machinery still works.
        let mut comp = CadenceComparison::default();
        let seq: Vec<(u16, f64)> = (0..96)
            .map(|i| ((i % 2) as u16, if i % 2 == 0 { 50.0 } else { 90.0 }))
            .collect();
        comp.add(
            &tl_30min(&seq),
            SimDuration::from_minutes(30),
            SimDuration::from_hours(3),
        );
        assert_eq!(comp.p10_all.len(), 1);
        // Subsample kept slots 0,6,12,... — all path 0 → single-path, no delta.
        assert!(comp.p10_sub.is_empty());
        assert!(comp.p10_ecdf_gap().is_none());
    }

    #[test]
    fn ecdf_gap_zero_for_identical() {
        let comp = CadenceComparison {
            p10_all: vec![1.0, 2.0, 3.0],
            p10_sub: vec![1.0, 2.0, 3.0],
            ..Default::default()
        };
        assert_eq!(comp.p10_ecdf_gap(), Some(0.0));
    }

    #[test]
    fn ecdf_gap_large_for_disjoint() {
        let comp = CadenceComparison {
            p90_all: vec![1.0, 2.0],
            p90_sub: vec![100.0, 200.0],
            ..Default::default()
        };
        assert_eq!(comp.p90_ecdf_gap(), Some(1.0));
    }

    /// 96-slot day: a busy-hour bump peaking a quarter of the way in.
    fn bumpy_ring(amp: f64) -> DiurnalProfile {
        let mut ring = DiurnalProfile::new(96);
        for day in 0..7 {
            for slot in 0..96u64 {
                let phase = 2.0 * std::f64::consts::PI * slot as f64 / 96.0;
                let jitter = ((day * 96 + slot) % 5) as f64 * 0.1;
                ring.fold_slot(slot, 60.0 + amp * phase.sin().max(0.0) + jitter);
            }
        }
        ring
    }

    #[test]
    fn diurnal_shape_finds_the_busy_period() {
        let shape = diurnal_shape(&bumpy_ring(30.0)).unwrap();
        assert_eq!(shape.peak_slot, 24, "sin peaks a quarter-day in");
        assert!(shape.peak_mean_ms > 85.0, "peak {}", shape.peak_mean_ms);
        assert!(shape.amplitude_ms > 25.0, "amplitude {}", shape.amplitude_ms);
        // The positive half-sine is high for ~1/3 of the day, not all of it.
        assert!(
            shape.busy_fraction > 0.1 && shape.busy_fraction < 0.5,
            "busy {}",
            shape.busy_fraction
        );
    }

    #[test]
    fn flat_day_has_tiny_amplitude_and_everything_is_busy() {
        let shape = diurnal_shape(&bumpy_ring(0.0)).unwrap();
        assert!(shape.amplitude_ms < 1.0, "amplitude {}", shape.amplitude_ms);
        assert_eq!(diurnal_shape(&DiurnalProfile::new(96)), None);
    }

    #[test]
    fn checked_shape_annotates_coverage_and_refuses_sparse_profiles() {
        use s2s_probe::{CampaignConfig, PairProfileSink, StreamSink};
        let cfg = CampaignConfig::ping_week(SimTime::T0);
        let sink = PairProfileSink::with_shape(&cfg, 64, 32);
        let fold = |every: usize| {
            let mut st = sink.init(ClusterId::new(0), ClusterId::new(1), Protocol::V4);
            for ti in 0..672usize {
                let t = cfg.start
                    + SimDuration::from_minutes(ti as u32 * cfg.interval.minutes());
                let rtt = (ti % every == 0).then(|| {
                    60.0 + 20.0
                        * (2.0 * std::f64::consts::PI * ti as f64 / 96.0).sin().max(0.0)
                });
                sink.fold(&mut st, ti as u64, t, rtt);
            }
            st
        };
        let dense = fold(1);
        let (shape, cov) = diurnal_shape_checked(&dense, 0.9).unwrap();
        assert_eq!((cov.usable, cov.offered), (672, 672));
        assert!(shape.amplitude_ms > 15.0);
        let sparse = fold(5);
        let err = diurnal_shape_checked(&sparse, 0.9).unwrap_err();
        assert!(matches!(err, AnalysisError::InsufficientCoverage { .. }), "{err}");
    }
}
