//! Congestion localization (§5.2).
//!
//! "We define the path from the vantage point of a traceroute to a given
//! hop as a *segment* … we find the first segment that contributed to the
//! overall increase in RTT." The per-segment RTT time series is compared
//! to the end-to-end series with the Pearson correlation coefficient; the
//! first segment with ρ ≥ 0.5 marks the congested link — the link between
//! that segment's last hop and the hop before it.
//!
//! Following the paper, localization only runs on pairs whose IP-level
//! path is static across the campaign (routing changes would confound the
//! correlation); the AS-symmetry precondition is the caller's
//! responsibility since it needs both directions.

use s2s_probe::TracerouteRecord;
use s2s_stats::{diurnal_psd_ratio, pearson};
use std::net::IpAddr;

/// Localization thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocateParams {
    /// Minimum Pearson ρ for a segment to be blamed (paper: 0.5).
    pub rho_threshold: f64,
    /// Minimum diurnal PSD ratio of the end-to-end series (paper: 0.3).
    pub psd_threshold: f64,
    /// Samples per day of the record series (48 for 30-minute campaigns).
    pub samples_per_day: usize,
    /// Minimum usable records.
    pub min_records: usize,
}

impl Default for LocateParams {
    fn default() -> Self {
        LocateParams {
            rho_threshold: 0.5,
            psd_threshold: 0.3,
            samples_per_day: 48,
            min_records: 96,
        }
    }
}

/// The localization verdict for one directed pair.
#[derive(Clone, Debug, PartialEq)]
pub enum LocateOutcome {
    /// Too few complete records to analyze.
    InsufficientData,
    /// The IP-level path changed during the campaign; skipped (§5.2).
    UnstablePath,
    /// No diurnal signal on the end-to-end series anymore.
    NotCongested,
    /// A segment was blamed.
    Located {
        /// Index of the first correlated segment (0 = first hop).
        segment: usize,
        /// The hop address on the near side of the blamed link (`None`
        /// when the blamed segment is the very first hop).
        near: Option<IpAddr>,
        /// The hop address on the far side (the correlated hop itself).
        far: IpAddr,
        /// The correlation of that segment with the end-to-end series.
        rho: f64,
        /// The end-to-end diurnal PSD ratio.
        psd_ratio: f64,
    },
    /// Congestion confirmed but no segment crossed the ρ threshold (e.g.
    /// it sits past the last responsive hop).
    Unlocated,
}

/// Localizes congestion for one directed pair from its (time-ordered)
/// traceroute records.
pub fn locate(records: &[TracerouteRecord], params: &LocateParams) -> LocateOutcome {
    let mut acc = SegmentAccumulator::default();
    for r in records {
        acc.push(r);
    }
    acc.locate(params)
}

/// A streaming form of [`locate`]: folds traceroutes in one at a time so a
/// multi-week campaign never has to materialize its full record list.
/// Memory is O(hops × samples) per pair (a few hundred KB), not
/// O(records).
#[derive(Clone, Debug, Default)]
pub struct SegmentAccumulator {
    /// The hop-address sequence of the first usable record.
    reference: Option<Vec<Option<IpAddr>>>,
    /// Set false as soon as a record's addresses disagree.
    unstable: bool,
    /// Per-hop RTT series (NaN where a hop didn't answer on one record).
    hop_rtts: Vec<Vec<f64>>,
    /// End-to-end RTT series.
    e2e: Vec<f64>,
}

impl SegmentAccumulator {
    /// Folds one traceroute in. Unreached records are skipped (they carry
    /// no end-to-end RTT).
    ///
    /// Path stability is checked with unresponsive hops as wildcards: ICMP
    /// rate limiting blanks different hops on different runs without the
    /// route having changed, and the paper's static-path requirement is
    /// about the *route*. A conflict between two responsive observations of
    /// the same hop position marks the pair unstable.
    pub fn push(&mut self, rec: &TracerouteRecord) {
        let Some(e2e) = rec.e2e_rtt_ms.filter(|_| rec.reached) else { return };
        if self.unstable {
            return;
        }
        match &mut self.reference {
            None => {
                self.reference = Some(rec.hops.iter().map(|h| h.addr).collect());
                self.hop_rtts = vec![Vec::new(); rec.hops.len()];
            }
            Some(r) => {
                if r.len() != rec.hops.len() {
                    self.unstable = true;
                    return;
                }
                for (slot, h) in r.iter_mut().zip(&rec.hops) {
                    match (*slot, h.addr) {
                        (Some(a), Some(b)) if a != b => {
                            self.unstable = true;
                            return;
                        }
                        (None, Some(b)) => *slot = Some(b),
                        _ => {}
                    }
                }
            }
        }
        for (k, h) in rec.hops.iter().enumerate() {
            self.hop_rtts[k].push(h.rtt_ms.unwrap_or(f64::NAN));
        }
        self.e2e.push(e2e);
    }

    /// The end-to-end RTT series accumulated so far (for overhead
    /// estimation).
    pub fn e2e_series(&self) -> &[f64] {
        &self.e2e
    }

    /// The reference hop addresses (once any record was folded).
    pub fn reference_path(&self) -> Option<&[Option<IpAddr>]> {
        self.reference.as_deref()
    }

    /// Runs the localization on the accumulated series.
    pub fn locate(&self, params: &LocateParams) -> LocateOutcome {
        if self.unstable {
            return LocateOutcome::UnstablePath;
        }
        if self.e2e.len() < params.min_records {
            return LocateOutcome::InsufficientData;
        }
        let reference = self.reference.as_ref().expect("records were folded");
        let Some(psd) = diurnal_psd_ratio(&self.e2e, params.samples_per_day) else {
            return LocateOutcome::NotCongested;
        };
        if psd < params.psd_threshold {
            return LocateOutcome::NotCongested;
        }
        // First visible segment whose series tracks the end-to-end series.
        // Rate-limited samples are NaN; correlate over pairwise-complete
        // observations, requiring ≥70% coverage so a sparse segment can't
        // be blamed on a handful of points.
        for (k, far) in reference.iter().enumerate() {
            let Some(far) = *far else { continue };
            let series = &self.hop_rtts[k];
            let mut xs = Vec::with_capacity(series.len());
            let mut ys = Vec::with_capacity(series.len());
            for (&hop, &e) in series.iter().zip(&self.e2e) {
                if !hop.is_nan() {
                    xs.push(e);
                    ys.push(hop);
                }
            }
            if xs.len() * 10 < self.e2e.len() * 7 {
                continue;
            }
            if let Some(rho) = pearson(&xs, &ys) {
                if rho >= params.rho_threshold {
                    let near = reference[..k].iter().rev().find_map(|a| *a);
                    return LocateOutcome::Located {
                        segment: k,
                        near,
                        far,
                        rho,
                        psd_ratio: psd,
                    };
                }
            }
        }
        LocateOutcome::Unlocated
    }
}

/// The TSLP-style alternative locator (Luckie et al., as cited in §5.1):
/// instead of correlating cumulative segment RTTs against the end-to-end
/// series, it applies the FFT to the *difference* between successive hops'
/// RTT series — the near link of the first hop whose difference series
/// carries a diurnal signal is congested. Diffing isolates each link's
/// contribution, at the cost of doubling the noise.
///
/// Exposed alongside [`SegmentAccumulator::locate`] so the ablation bench
/// can compare the two methods' agreement.
impl SegmentAccumulator {
    /// Runs TSLP-style localization on the accumulated series.
    pub fn locate_tslp(&self, params: &LocateParams) -> LocateOutcome {
        if self.unstable {
            return LocateOutcome::UnstablePath;
        }
        if self.e2e.len() < params.min_records {
            return LocateOutcome::InsufficientData;
        }
        let reference = self.reference.as_ref().expect("records were folded");
        let Some(psd) = diurnal_psd_ratio(&self.e2e, params.samples_per_day) else {
            return LocateOutcome::NotCongested;
        };
        if psd < params.psd_threshold {
            return LocateOutcome::NotCongested;
        }
        // Difference series per hop: RTT(k) − RTT(prev responsive hop).
        // The first hop itself diffs against zero (its own series).
        let mut prev_series: Option<&Vec<f64>> = None;
        let mut prev_addr: Option<IpAddr> = None;
        for (k, far) in reference.iter().enumerate() {
            let Some(far) = *far else { continue };
            let series = &self.hop_rtts[k];
            let mut diffs = Vec::with_capacity(series.len());
            for (i, &v) in series.iter().enumerate() {
                if v.is_nan() {
                    continue;
                }
                let base = prev_series
                    .map(|p| p[i])
                    .filter(|b| !b.is_nan())
                    .unwrap_or(0.0);
                diffs.push(v - base);
            }
            if diffs.len() * 10 >= self.e2e.len() * 7 {
                if let Some(link_psd) = diurnal_psd_ratio(&diffs, params.samples_per_day)
                {
                    if link_psd >= params.psd_threshold {
                        return LocateOutcome::Located {
                            segment: k,
                            near: prev_addr,
                            far,
                            rho: link_psd, // the TSLP score in the rho slot
                            psd_ratio: psd,
                        };
                    }
                }
            }
            prev_series = Some(series);
            prev_addr = Some(far);
        }
        LocateOutcome::Unlocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_probe::HopObs;
    use s2s_types::{ClusterId, Protocol, SimTime};
    use std::f64::consts::PI;

    /// Builds records over `n` 30-minute slots with 3 hops; congestion (a
    /// diurnal bump) enters at `congested_hop` (None = no congestion).
    fn records(n: usize, congested_hop: Option<usize>) -> Vec<TracerouteRecord> {
        let base = [5.0, 20.0, 45.0];
        let addrs = ["10.0.0.1", "10.0.1.1", "10.0.2.1"];
        (0..n)
            .map(|i| {
                let t = SimTime::from_minutes(i as u32 * 30);
                let phase = 2.0 * PI * i as f64 / 48.0;
                let bump = 25.0 * phase.sin().max(0.0);
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let jitter = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.6;
                let hops: Vec<HopObs> = (0..3)
                    .map(|k| {
                        let mut rtt = base[k] + jitter;
                        if let Some(c) = congested_hop {
                            if k >= c {
                                rtt += bump;
                            }
                        }
                        HopObs {
                            addr: Some(addrs[k].parse().unwrap()),
                            rtt_ms: Some(rtt),
                        }
                    })
                    .collect();
                let e2e = 60.0
                    + jitter
                    + if congested_hop.is_some() { bump } else { 0.0 };
                TracerouteRecord {
                    src: ClusterId::new(0),
                    dst: ClusterId::new(1),
                    proto: Protocol::V4,
                    t,
                    hops,
                    reached: true,
                    e2e_rtt_ms: Some(e2e),
                    src_addr: Some("10.9.0.1".parse().unwrap()),
                    dst_addr: Some("10.0.3.9".parse().unwrap()),
                }
            })
            .collect()
    }

    #[test]
    fn blames_the_first_congested_segment() {
        let recs = records(480, Some(1));
        match locate(&recs, &LocateParams::default()) {
            LocateOutcome::Located { segment, near, far, rho, psd_ratio } => {
                assert_eq!(segment, 1);
                assert_eq!(near, Some("10.0.0.1".parse().unwrap()));
                assert_eq!(far, "10.0.1.1".parse::<IpAddr>().unwrap());
                assert!(rho >= 0.5);
                assert!(psd_ratio >= 0.3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn first_hop_congestion_has_no_near_side() {
        let recs = records(480, Some(0));
        match locate(&recs, &LocateParams::default()) {
            LocateOutcome::Located { segment, near, .. } => {
                assert_eq!(segment, 0);
                assert_eq!(near, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quiet_pair_is_not_congested() {
        let recs = records(480, None);
        assert_eq!(locate(&recs, &LocateParams::default()), LocateOutcome::NotCongested);
    }

    #[test]
    fn short_campaign_is_insufficient() {
        let recs = records(10, Some(1));
        assert_eq!(
            locate(&recs, &LocateParams::default()),
            LocateOutcome::InsufficientData
        );
    }

    #[test]
    fn path_change_aborts_localization() {
        let mut recs = records(480, Some(1));
        recs[100].hops[1].addr = Some("10.9.9.9".parse().unwrap());
        assert_eq!(locate(&recs, &LocateParams::default()), LocateOutcome::UnstablePath);
    }

    #[test]
    fn later_segments_also_correlate_but_first_wins() {
        // Congestion at hop 1 also raises hop 2's series; the paper marks
        // the *first* correlated segment.
        let recs = records(480, Some(1));
        if let LocateOutcome::Located { segment, .. } =
            locate(&recs, &LocateParams::default())
        {
            assert_eq!(segment, 1, "must blame the first, not a later segment");
        } else {
            panic!("expected location");
        }
    }

    #[test]
    fn tslp_blames_the_same_link_as_pearson() {
        let recs = records(480, Some(1));
        let mut acc = SegmentAccumulator::default();
        for r in &recs {
            acc.push(r);
        }
        let pearson_loc = acc.locate(&LocateParams::default());
        let tslp_loc = acc.locate_tslp(&LocateParams::default());
        match (&pearson_loc, &tslp_loc) {
            (
                LocateOutcome::Located { segment: s1, far: f1, .. },
                LocateOutcome::Located { segment: s2, far: f2, .. },
            ) => {
                assert_eq!(s1, s2, "methods disagree on the segment");
                assert_eq!(f1, f2);
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
    }

    #[test]
    fn tslp_quiet_pair_not_congested() {
        let recs = records(480, None);
        let mut acc = SegmentAccumulator::default();
        for r in &recs {
            acc.push(r);
        }
        assert_eq!(
            acc.locate_tslp(&LocateParams::default()),
            LocateOutcome::NotCongested
        );
    }

    #[test]
    fn tslp_does_not_blame_downstream_hops() {
        // Congestion at hop 1 raises hops 1 and 2 in the cumulative series,
        // but the hop-2 *difference* series is flat: TSLP must stop at 1.
        let recs = records(480, Some(1));
        let mut acc = SegmentAccumulator::default();
        for r in &recs {
            acc.push(r);
        }
        if let LocateOutcome::Located { segment, .. } =
            acc.locate_tslp(&LocateParams::default())
        {
            assert_eq!(segment, 1);
        } else {
            panic!("TSLP found nothing");
        }
    }

    #[test]
    fn unresponsive_hop_is_skipped_in_blame() {
        let mut recs = records(480, Some(1));
        for r in &mut recs {
            r.hops[1].addr = None;
            r.hops[1].rtt_ms = None;
        }
        match locate(&recs, &LocateParams::default()) {
            LocateOutcome::Located { segment, near, far, .. } => {
                // Blame falls on the next visible segment.
                assert_eq!(segment, 2);
                assert_eq!(near, Some("10.0.0.1".parse().unwrap()));
                assert_eq!(far, "10.0.2.1".parse::<IpAddr>().unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
