//! Consistent-congestion detection (§5.1).
//!
//! Two stacked filters over a ping timeline:
//!
//! 1. *variation*: the 95th−5th percentile spread of the pair's RTTs must
//!    exceed 10 ms (the paper finds <9.5% of IPv4 and <4% of IPv6 pairs
//!    pass this),
//! 2. *diurnal signal*: the FFT power concentrated around f = 1/day must be
//!    at least 0.3 of the total (dropping the passing set to ~2% / ~0.6%).
//!
//! Pairs with fewer than ~90% valid samples (600 of 672 in the paper) are
//! excluded.

use s2s_probe::PingTimeline;
use s2s_stats::{diurnal_psd_ratio, Summary};
use s2s_types::{AnalysisError, Coverage, MINUTES_PER_DAY};

/// Detection thresholds (paper defaults).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectParams {
    /// Minimum 95th−5th percentile spread, ms.
    pub variation_threshold_ms: f64,
    /// Minimum fraction of spectral power around f = 1/day.
    pub psd_threshold: f64,
    /// Minimum valid samples required (paper: 600 of 672).
    pub min_valid_samples: usize,
}

impl Default for DetectParams {
    fn default() -> Self {
        DetectParams {
            variation_threshold_ms: 10.0,
            psd_threshold: 0.3,
            min_valid_samples: 600,
        }
    }
}

/// Per-pair detection result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairCongestion {
    /// The 95th−5th percentile spread, ms.
    pub spread_ms: f64,
    /// The diurnal PSD ratio (when computable).
    pub psd_ratio: Option<f64>,
    /// Spread exceeded the variation threshold.
    pub high_variation: bool,
    /// Both filters passed: this pair is *consistently congested*.
    pub consistent: bool,
}

/// Runs detection on one ping timeline. `None` when the timeline has too
/// few valid samples (the paper's ≥600-of-672 requirement, scaled by the
/// caller through [`DetectParams::min_valid_samples`]).
pub fn detect(tl: &PingTimeline, params: &DetectParams) -> Option<PairCongestion> {
    if tl.valid_samples() < params.min_valid_samples {
        return None;
    }
    let rtts = tl.valid_rtts();
    let summary = Summary::of(&rtts)?;
    let spread = summary.spread_95_5();
    let high_variation = spread > params.variation_threshold_ms;
    let samples_per_day = (MINUTES_PER_DAY / tl.interval.minutes()) as usize;
    let filled = tl.filled_rtts()?;
    let psd_ratio = diurnal_psd_ratio(&filled, samples_per_day);
    let consistent =
        high_variation && psd_ratio.map(|r| r >= params.psd_threshold).unwrap_or(false);
    Some(PairCongestion { spread_ms: spread, psd_ratio, high_variation, consistent })
}

/// How much of a ping timeline's offered schedule produced a valid RTT.
pub fn ping_coverage(tl: &PingTimeline) -> Coverage {
    Coverage::new(tl.valid_samples(), tl.rtts.len())
}

/// Coverage-checked [`detect`]: accepts a gap-bearing ping timeline (lost
/// slots are `NaN`), annotates the verdict with its coverage, and refuses
/// with a typed error below `min_coverage` instead of silently returning
/// `None`.
///
/// The fractional floor replaces the absolute
/// [`DetectParams::min_valid_samples`] gate (the paper's 600-of-672 is
/// ~89%), so campaigns of any length can state the same requirement.
pub fn detect_checked(
    tl: &PingTimeline,
    params: &DetectParams,
    min_coverage: f64,
) -> Result<(PairCongestion, Coverage), AnalysisError> {
    let coverage = ping_coverage(tl);
    coverage.require(min_coverage)?;
    let relaxed = DetectParams { min_valid_samples: 0, ..*params };
    match detect(tl, &relaxed) {
        Some(verdict) => Ok((verdict, coverage)),
        // The floor passed but the series is degenerate (e.g. empty, or
        // too sparse to interpolate): refuse, don't invent a verdict.
        None => Err(AnalysisError::NoUsableData),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
    use std::f64::consts::PI;

    fn timeline(rtts: Vec<f32>) -> PingTimeline {
        PingTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            start: SimTime::T0,
            interval: SimDuration::from_minutes(15),
            rtts,
        }
    }

    fn diurnal_series(amp: f64, noise: f64) -> Vec<f32> {
        (0..672)
            .map(|i| {
                let phase = 2.0 * PI * i as f64 / 96.0;
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                // Busy-hour bump shape (positive only), like real queueing.
                (60.0 + amp * phase.sin().max(0.0) + noise * u) as f32
            })
            .collect()
    }

    #[test]
    fn congested_pair_detected() {
        let tl = timeline(diurnal_series(30.0, 2.0));
        let r = detect(&tl, &DetectParams::default()).unwrap();
        assert!(r.high_variation, "spread = {}", r.spread_ms);
        assert!(r.consistent, "psd = {:?}", r.psd_ratio);
        assert!(r.spread_ms > 20.0);
    }

    #[test]
    fn flat_pair_not_detected() {
        let tl = timeline(diurnal_series(0.0, 3.0));
        let r = detect(&tl, &DetectParams::default()).unwrap();
        assert!(!r.high_variation);
        assert!(!r.consistent);
    }

    #[test]
    fn noisy_but_non_diurnal_fails_second_filter() {
        // Big spread from random spikes, no daily period.
        let rtts: Vec<f32> = (0..672)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                (50.0 + if u < 0.2 { 40.0 * u * 5.0 } else { 0.0 }) as f32
            })
            .collect();
        let r = detect(&timeline(rtts), &DetectParams::default()).unwrap();
        assert!(r.high_variation, "spread = {}", r.spread_ms);
        assert!(!r.consistent, "psd = {:?}", r.psd_ratio);
    }

    #[test]
    fn sparse_timeline_excluded() {
        let mut rtts = diurnal_series(30.0, 2.0);
        for (i, r) in rtts.iter_mut().enumerate() {
            if i % 5 != 0 {
                *r = f32::NAN; // only ~134 valid samples
            }
        }
        assert_eq!(detect(&timeline(rtts), &DetectParams::default()), None);
    }

    #[test]
    fn lost_samples_tolerated_within_limit() {
        let mut rtts = diurnal_series(30.0, 2.0);
        for r in rtts.iter_mut().take(40) {
            *r = f32::NAN; // 632 valid ≥ 600
        }
        let r = detect(&timeline(rtts), &DetectParams::default()).unwrap();
        assert!(r.consistent);
    }

    #[test]
    fn checked_detect_annotates_coverage_and_refuses_below_floor() {
        // 632 of 672 valid: ~94% coverage, verdict must match `detect`.
        let mut rtts = diurnal_series(30.0, 2.0);
        for r in rtts.iter_mut().take(40) {
            *r = f32::NAN;
        }
        let tl = timeline(rtts);
        let (verdict, cov) = detect_checked(&tl, &DetectParams::default(), 0.89).unwrap();
        assert!(verdict.consistent);
        assert_eq!((cov.usable, cov.offered), (632, 672));
        assert_eq!(Some(verdict), detect(&tl, &DetectParams::default()));

        // ~20% coverage: refused with the typed error, not None, not a panic.
        let mut sparse = diurnal_series(30.0, 2.0);
        for (i, r) in sparse.iter_mut().enumerate() {
            if i % 5 != 0 {
                *r = f32::NAN;
            }
        }
        let err = detect_checked(&timeline(sparse), &DetectParams::default(), 0.89).unwrap_err();
        assert!(matches!(err, AnalysisError::InsufficientCoverage { .. }), "{err}");
    }

    #[test]
    fn checked_detect_refuses_degenerate_series() {
        // Empty schedule: fully covered by definition, but nothing to
        // analyze — typed refusal, not a panic.
        let err = detect_checked(&timeline(vec![]), &DetectParams::default(), 0.9).unwrap_err();
        assert_eq!(err, AnalysisError::NoUsableData);
    }

    #[test]
    fn thresholds_are_respected() {
        let tl = timeline(diurnal_series(12.0, 1.0));
        let strict = DetectParams { variation_threshold_ms: 50.0, ..Default::default() };
        let r = detect(&tl, &strict).unwrap();
        assert!(!r.high_variation);
        let lax = DetectParams {
            variation_threshold_ms: 1.0,
            psd_threshold: 0.05,
            ..Default::default()
        };
        let r = detect(&tl, &lax).unwrap();
        assert!(r.consistent);
    }
}
