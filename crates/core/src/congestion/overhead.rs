//! Congestion overhead estimation (§5.4, Fig. 9).
//!
//! The overhead a congestion episode adds is the swing of the end-to-end
//! RTT over its daily cycle: the busy-hour level minus the quiet baseline.
//! We estimate it as the 95th−5th percentile spread of the series, which
//! tracks the diurnal amplitude while shrugging off isolated spikes.

use s2s_stats::Summary;

/// Estimates the congestion overhead of an end-to-end RTT series, in ms.
/// `None` for empty series.
pub fn overhead_ms(e2e_rtts: &[f64]) -> Option<f64> {
    Summary::of(e2e_rtts).map(|s| s.spread_95_5())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn tracks_diurnal_amplitude() {
        // 10 days of 30-minute samples, 25 ms busy-hour bump.
        let series: Vec<f64> = (0..480)
            .map(|i| {
                let phase = 2.0 * PI * i as f64 / 48.0;
                50.0 + 25.0 * phase.sin().max(0.0)
            })
            .collect();
        let o = overhead_ms(&series).unwrap();
        assert!((20.0..27.0).contains(&o), "overhead = {o}");
    }

    #[test]
    fn flat_series_has_no_overhead() {
        let series = vec![50.0; 100];
        assert_eq!(overhead_ms(&series), Some(0.0));
    }

    #[test]
    fn isolated_spikes_are_mostly_ignored() {
        let mut series = vec![50.0; 100];
        series[10] = 400.0;
        series[60] = 350.0;
        let o = overhead_ms(&series).unwrap();
        assert!(o < 10.0, "overhead = {o} should ignore 2% outliers");
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(overhead_ms(&[]), None);
    }
}
