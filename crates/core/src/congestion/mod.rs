//! Congestion analyses (§5).
//!
//! * [`mod@detect`] — is a server pair consistently congested? (95th−5th
//!   percentile variation filter + FFT diurnal signal, §5.1),
//! * [`streamed`] — the same classification straight from constant-memory
//!   [`PairProfile`](s2s_probe::PairProfile)s folded by a streaming
//!   campaign sink (no materialized timelines),
//! * [`mod@locate`] — which traceroute segment carries the congestion?
//!   (per-segment Pearson correlation against the end-to-end series, §5.2),
//! * [`overhead`] — how much latency does the congestion add? (Fig. 9).

pub mod detect;
pub mod locate;
pub mod overhead;
pub mod streamed;

pub use detect::{detect, detect_checked, ping_coverage, DetectParams, PairCongestion};
pub use locate::{locate, LocateOutcome, LocateParams, SegmentAccumulator};
pub use overhead::overhead_ms;
pub use streamed::{
    detect_profile, detect_profile_checked, overhead_profile, overhead_profiles,
};
