//! Streamed consistent-congestion classification (§5.1–§5.2, Fig. 9).
//!
//! The same two stacked filters as [`detect`](crate::congestion::detect()),
//! computed from a [`PairProfile`] — the constant-memory per-(pair,
//! protocol) state a [`PairProfileSink`](s2s_probe::PairProfileSink)
//! campaign folds — instead of a materialized
//! [`PingTimeline`](s2s_probe::PingTimeline):
//!
//! 1. *variation*: the 95th−5th spread comes from the profile's quantile
//!    sketch (exact below the `S2S_SKETCH_EXACT` floor, within the rank
//!    error bound of [`QuantileSketch::quantile`] above it),
//! 2. *diurnal signal*: the PSD ratio comes from the profile's streamed
//!    filled-series spectrum, which matches the FFT path to ~1e-6.
//!
//! [`QuantileSketch::quantile`]: s2s_stats::QuantileSketch::quantile
//!
//! Verdicts therefore agree with the materialized path except for pairs
//! whose spread sits within the sketch's rank-error of the 10 ms
//! threshold — the bench's `streamed_exact_agreement` field tracks that
//! fraction (≥ 99% required).

use super::detect::{DetectParams, PairCongestion};
use s2s_probe::PairProfile;
use s2s_types::{AnalysisError, Coverage};

/// Runs §5.1 detection on one streamed profile. `None` when the profile
/// has too few valid samples (same gate as
/// [`detect`](crate::congestion::detect())).
pub fn detect_profile(
    profile: &PairProfile,
    params: &DetectParams,
) -> Option<PairCongestion> {
    if profile.valid_samples() < params.min_valid_samples {
        return None;
    }
    let spread = profile.spread_95_5()?;
    let high_variation = spread > params.variation_threshold_ms;
    let psd_ratio = profile.psd_ratio();
    let consistent =
        high_variation && psd_ratio.map(|r| r >= params.psd_threshold).unwrap_or(false);
    Some(PairCongestion { spread_ms: spread, psd_ratio, high_variation, consistent })
}

/// Coverage-checked [`detect_profile`]: the streamed mirror of
/// [`detect_checked`](crate::congestion::detect_checked) — annotates the
/// verdict with the profile's delivered-over-offered coverage and refuses
/// with a typed error below `min_coverage`.
pub fn detect_profile_checked(
    profile: &PairProfile,
    params: &DetectParams,
    min_coverage: f64,
) -> Result<(PairCongestion, Coverage), AnalysisError> {
    let coverage = profile.coverage();
    coverage.require(min_coverage)?;
    let relaxed = DetectParams { min_valid_samples: 0, ..*params };
    match detect_profile(profile, &relaxed) {
        Some(verdict) => Ok((verdict, coverage)),
        None => Err(AnalysisError::NoUsableData),
    }
}

/// The Fig. 9 congestion overhead of one streamed profile, ms: the
/// 95th−5th percentile spread of its RTTs, like
/// [`overhead_ms`](crate::congestion::overhead_ms) over a materialized
/// end-to-end series.
pub fn overhead_profile(profile: &PairProfile) -> Option<f64> {
    profile.spread_95_5()
}

/// The Fig. 9 overhead sample set over a streamed mesh: one spread per
/// *consistently congested* profile (the density inputs — feed them to a
/// KDE for the figure itself).
pub fn overhead_profiles(profiles: &[PairProfile], params: &DetectParams) -> Vec<f64> {
    profiles
        .iter()
        .filter(|p| detect_profile(p, params).map(|r| r.consistent).unwrap_or(false))
        .filter_map(overhead_profile)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::detect::{detect, detect_checked};
    use s2s_probe::{CampaignConfig, PairProfileSink, PingTimeline, StreamSink};
    use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
    use std::f64::consts::PI;

    fn week_cfg() -> CampaignConfig {
        CampaignConfig::ping_week(SimTime::T0)
    }

    /// Folds a dense f32 series (NaN = lost) through the profile sink,
    /// mirroring what the campaign's sink executor does.
    fn profile_of(rtts: &[f32], sink: &PairProfileSink, cfg: &CampaignConfig) -> PairProfile {
        let mut st = sink.init(ClusterId::new(0), ClusterId::new(1), Protocol::V4);
        for (ti, &r) in rtts.iter().enumerate() {
            let t = cfg.start + SimDuration::from_minutes(ti as u32 * cfg.interval.minutes());
            let rtt = if r.is_nan() { None } else { Some(f64::from(r)) };
            sink.fold(&mut st, ti as u64, t, rtt);
        }
        sink.finish(&mut st);
        st
    }

    fn timeline(rtts: Vec<f32>) -> PingTimeline {
        PingTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            start: SimTime::T0,
            interval: SimDuration::from_minutes(15),
            rtts,
        }
    }

    fn diurnal_series(amp: f64, noise: f64) -> Vec<f32> {
        (0..672)
            .map(|i| {
                let phase = 2.0 * PI * i as f64 / 96.0;
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                (60.0 + amp * phase.sin().max(0.0) + noise * u) as f32
            })
            .collect()
    }

    #[test]
    fn streamed_verdicts_match_materialized() {
        let cfg = week_cfg();
        let sink = PairProfileSink::with_shape(&cfg, 256, 128);
        let params = DetectParams::default();
        for (amp, noise) in [(30.0, 2.0), (0.0, 3.0), (12.0, 1.0), (50.0, 10.0)] {
            let rtts = diurnal_series(amp, noise);
            let exact = detect(&timeline(rtts.clone()), &params).unwrap();
            let streamed =
                detect_profile(&profile_of(&rtts, &sink, &cfg), &params).unwrap();
            assert_eq!(
                (streamed.high_variation, streamed.consistent),
                (exact.high_variation, exact.consistent),
                "amp {amp} noise {noise}: streamed {streamed:?} vs exact {exact:?}"
            );
            assert!(
                (streamed.spread_ms - exact.spread_ms).abs() < 1.0,
                "spread {} vs {}",
                streamed.spread_ms,
                exact.spread_ms
            );
            let (s_psd, e_psd) = (streamed.psd_ratio.unwrap(), exact.psd_ratio.unwrap());
            assert!((s_psd - e_psd).abs() < 1e-6, "psd {s_psd} vs {e_psd}");
        }
    }

    #[test]
    fn sparse_profile_excluded_like_sparse_timeline() {
        let cfg = week_cfg();
        let sink = PairProfileSink::with_shape(&cfg, 256, 128);
        let mut rtts = diurnal_series(30.0, 2.0);
        for (i, r) in rtts.iter_mut().enumerate() {
            if i % 5 != 0 {
                *r = f32::NAN;
            }
        }
        let profile = profile_of(&rtts, &sink, &cfg);
        assert_eq!(detect_profile(&profile, &DetectParams::default()), None);
        assert_eq!(detect(&timeline(rtts), &DetectParams::default()), None);
    }

    #[test]
    fn checked_profile_mirrors_checked_timeline() {
        let cfg = week_cfg();
        let sink = PairProfileSink::with_shape(&cfg, 256, 128);
        let params = DetectParams::default();

        // 632 of 672 valid: both paths pass the 89% floor, same coverage.
        let mut rtts = diurnal_series(30.0, 2.0);
        for r in rtts.iter_mut().take(40) {
            *r = f32::NAN;
        }
        let profile = profile_of(&rtts, &sink, &cfg);
        let (sv, sc) = detect_profile_checked(&profile, &params, 0.89).unwrap();
        let (ev, ec) = detect_checked(&timeline(rtts), &params, 0.89).unwrap();
        assert_eq!((sv.high_variation, sv.consistent), (ev.high_variation, ev.consistent));
        assert_eq!((sc.usable, sc.offered), (ec.usable, ec.offered));

        // ~20% coverage: typed refusal.
        let mut sparse = diurnal_series(30.0, 2.0);
        for (i, r) in sparse.iter_mut().enumerate() {
            if i % 5 != 0 {
                *r = f32::NAN;
            }
        }
        let err = detect_profile_checked(&profile_of(&sparse, &sink, &cfg), &params, 0.89)
            .unwrap_err();
        assert!(matches!(err, AnalysisError::InsufficientCoverage { .. }), "{err}");
    }

    #[test]
    fn checked_profile_refuses_degenerate_series() {
        let cfg = week_cfg();
        let sink = PairProfileSink::with_shape(&cfg, 256, 128);
        // All-lost schedule: zero coverage refuses at the floor; an empty
        // schedule (no offered slots at all) refuses as unusable.
        let all_lost = profile_of(&vec![f32::NAN; 672], &sink, &cfg);
        assert!(detect_profile_checked(&all_lost, &DetectParams::default(), 0.5).is_err());
        let empty = profile_of(&[], &sink, &cfg);
        let err =
            detect_profile_checked(&empty, &DetectParams::default(), 0.9).unwrap_err();
        assert_eq!(err, AnalysisError::NoUsableData);
    }

    #[test]
    fn overheads_come_from_consistent_profiles_only() {
        let cfg = week_cfg();
        let sink = PairProfileSink::with_shape(&cfg, 256, 128);
        let params = DetectParams::default();
        let congested = profile_of(&diurnal_series(30.0, 2.0), &sink, &cfg);
        let flat = profile_of(&diurnal_series(0.0, 3.0), &sink, &cfg);
        let profiles = vec![congested.clone(), flat];
        let overheads = overhead_profiles(&profiles, &params);
        assert_eq!(overheads.len(), 1);
        assert_eq!(overheads[0], overhead_profile(&congested).unwrap());
        // The streamed overhead tracks the materialized Fig. 9 input.
        let exact = crate::congestion::overhead_ms(
            &timeline(diurnal_series(30.0, 2.0)).valid_rtts(),
        )
        .unwrap();
        assert!((overheads[0] - exact).abs() < 1.0, "{} vs {exact}", overheads[0]);
    }
}
