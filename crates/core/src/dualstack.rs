//! IPv4 vs IPv6 comparison (§6, Fig. 10a).
//!
//! For every instant where a dual-stack pair was measured over both
//! protocols simultaneously, the paper computes `RTTv4 − RTTv6`. Negative
//! values mean IPv4 was faster; positive mean switching to IPv6 would help.
//! A second ECDF restricts to instants where the AS path was *the same*
//! over both protocols — residual differences there come from the shared
//! infrastructure, not routing.

use crate::timeline::TraceTimeline;

/// The paired RTT differences of one dual-stack server pair.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DualStackDiffs {
    /// `RTTv4 − RTTv6` for every simultaneous measurement, ms.
    pub all: Vec<f64>,
    /// The subset where the v4 and v6 AS paths were identical.
    pub same_path: Vec<f64>,
}

impl DualStackDiffs {
    /// Appends another pair's diffs (for corpus-wide ECDFs).
    pub fn extend(&mut self, other: &DualStackDiffs) {
        self.all.extend_from_slice(&other.all);
        self.same_path.extend_from_slice(&other.same_path);
    }
}

/// Computes the diffs for one pair from its v4 and v6 timelines, matching
/// samples by timestamp.
pub fn rtt_diffs(v4: &TraceTimeline, v6: &TraceTimeline) -> DualStackDiffs {
    let mut out = DualStackDiffs::default();
    let mut j = 0;
    for s4 in &v4.samples {
        while j < v6.samples.len() && v6.samples[j].t < s4.t {
            j += 1;
        }
        if j >= v6.samples.len() {
            break;
        }
        let s6 = &v6.samples[j];
        if s6.t != s4.t {
            continue;
        }
        let (Some(r4), Some(r6)) = (s4.rtt_ms, s6.rtt_ms) else { continue };
        let diff = f64::from(r4) - f64::from(r6);
        out.all.push(diff);
        if let (Some(p4), Some(p6)) = (s4.path, s6.path) {
            if v4.paths[p4 as usize] == v6.paths[p6 as usize] {
                out.same_path.push(diff);
            }
        }
    }
    out
}

/// Headline statistics over a corpus of diffs (the §6 numbers).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DualStackSummary {
    /// Fraction of measurements within ±`similar_ms` (the shaded region of
    /// Fig. 10a — ~50% in the paper at 10 ms).
    pub frac_similar: f64,
    /// Fraction where IPv6 is faster by at least `big_ms` (use IPv6!).
    pub frac_v6_saves_big: f64,
    /// Fraction where IPv4 is faster by at least `big_ms`.
    pub frac_v4_saves_big: f64,
}

/// Computes the summary with the paper's thresholds (±10 ms similar,
/// ≥50 ms big savings).
pub fn summarize(diffs: &[f64], similar_ms: f64, big_ms: f64) -> Option<DualStackSummary> {
    if diffs.is_empty() {
        return None;
    }
    let n = diffs.len() as f64;
    let similar = diffs.iter().filter(|d| d.abs() < similar_ms).count() as f64;
    // diff = v4 - v6 > big: v6 is at least `big` faster.
    let v6_big = diffs.iter().filter(|&&d| d >= big_ms).count() as f64;
    let v4_big = diffs.iter().filter(|&&d| d <= -big_ms).count() as f64;
    Some(DualStackSummary {
        frac_similar: similar / n,
        frac_v6_saves_big: v6_big / n,
        frac_v4_saves_big: v4_big / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Sample;
    use s2s_types::{Asn, AsPath, ClusterId, Protocol, SimTime};

    fn tl(proto: Protocol, entries: &[(u32, Option<u16>, Option<f32>)]) -> TraceTimeline {
        TraceTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto,
            paths: vec![
                AsPath::from_asns([Asn::new(1), Asn::new(2)]),
                AsPath::from_asns([Asn::new(1), Asn::new(3), Asn::new(2)]),
            ],
            samples: entries
                .iter()
                .map(|&(m, p, r)| Sample { t: SimTime::from_minutes(m), path: p, rtt_ms: r })
                .collect(),
            counts: Default::default(),
        }
    }

    #[test]
    fn diffs_pair_by_timestamp() {
        let v4 = tl(
            Protocol::V4,
            &[(0, Some(0), Some(50.0)), (180, Some(0), Some(52.0))],
        );
        let v6 = tl(
            Protocol::V6,
            &[(0, Some(0), Some(45.0)), (180, Some(1), Some(60.0))],
        );
        let d = rtt_diffs(&v4, &v6);
        assert_eq!(d.all, vec![5.0, -8.0]);
        // Only the first instant had identical AS paths.
        assert_eq!(d.same_path, vec![5.0]);
    }

    #[test]
    fn missing_samples_skip_instants() {
        let v4 = tl(Protocol::V4, &[(0, Some(0), Some(50.0)), (180, None, None)]);
        let v6 = tl(Protocol::V6, &[(0, None, None), (180, Some(0), Some(48.0))]);
        let d = rtt_diffs(&v4, &v6);
        assert!(d.all.is_empty());
    }

    #[test]
    fn unaligned_timestamps_never_pair() {
        let v4 = tl(Protocol::V4, &[(0, Some(0), Some(50.0))]);
        let v6 = tl(Protocol::V6, &[(90, Some(0), Some(48.0))]);
        assert!(rtt_diffs(&v4, &v6).all.is_empty());
    }

    #[test]
    fn summary_thresholds() {
        let diffs = vec![0.0, 5.0, -5.0, 60.0, 70.0, -55.0, 20.0, -20.0];
        let s = summarize(&diffs, 10.0, 50.0).unwrap();
        assert!((s.frac_similar - 3.0 / 8.0).abs() < 1e-9);
        assert!((s.frac_v6_saves_big - 2.0 / 8.0).abs() < 1e-9);
        assert!((s.frac_v4_saves_big - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_none() {
        assert_eq!(summarize(&[], 10.0, 50.0), None);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = DualStackDiffs { all: vec![1.0], same_path: vec![1.0] };
        let b = DualStackDiffs { all: vec![2.0, 3.0], same_path: vec![] };
        a.extend(&b);
        assert_eq!(a.all, vec![1.0, 2.0, 3.0]);
        assert_eq!(a.same_path, vec![1.0]);
    }
}
