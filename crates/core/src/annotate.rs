//! Traceroute annotation: IP → ASN, imputation, loop filtering,
//! completeness accounting.
//!
//! Implements §2.1/§4.1 of the paper:
//!
//! * every hop address maps to "the origin AS of the longest matching
//!   prefix observed in BGP",
//! * traceroutes are classified for Table 1: *complete AS-level data* (all
//!   hops responsive and mapped), *missing AS-level data* (a responsive hop
//!   with no IP-to-ASN mapping), *missing IP-level data* (an unresponsive
//!   hop),
//! * unknown hops flanked by the same ASN are imputed (§4.1),
//! * traceroutes whose AS path still loops are flagged for exclusion
//!   (2.16% over IPv4, 5.5% over IPv6 in the paper's data).

use s2s_bgp::Ip2AsnMap;
use s2s_probe::TracerouteRecord;
use s2s_types::AsPath;
use serde::{Deserialize, Serialize};

/// Table-1 completeness class of a completed traceroute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Completeness {
    /// Every hop answered and mapped to an ASN.
    CompleteAsLevel,
    /// All hops answered, but at least one had no IP-to-ASN mapping.
    MissingAsLevel,
    /// At least one hop never answered.
    MissingIpLevel,
}

/// A traceroute after annotation.
#[derive(Clone, Debug, PartialEq)]
pub struct Annotated {
    /// The AS-level path (after duplicate collapsing and imputation).
    /// Unknown hops that could not be imputed remain `None`.
    pub as_path: AsPath,
    /// Table-1 class (meaningful only for completed traceroutes).
    pub completeness: Completeness,
    /// Whether the AS path contains a loop (excluded from path analyses).
    pub has_loop: bool,
    /// Number of hops imputed.
    pub imputed: usize,
}

/// Annotates one traceroute. The destination's AS (from `dst_addr`) is
/// appended so the path spans source AS to destination AS even when the
/// last router hop sits in the provider.
pub fn annotate(rec: &TracerouteRecord, map: &Ip2AsnMap) -> Annotated {
    let mut any_unmapped = false;
    let mut any_unresponsive = false;
    // IXP fabric addresses identify the exchange, not a network on the
    // AS path; like real pipelines armed with an IXP prefix list, we fold
    // them into the surrounding path (mapping them to no ASN and letting
    // imputation/omission handle the position).
    let lookup_non_ixp = |addr| {
        map.lookup(addr).filter(|a| !map.is_ixp(*a))
    };
    let src_hop = rec.src_addr.map(|a| map.lookup(a));
    let hops = src_hop
        .into_iter()
        .chain(rec.hops.iter().map(|h| match h.addr {
            Some(addr) => {
                let asn = lookup_non_ixp(addr);
                if map.lookup(addr).is_none() {
                    any_unmapped = true;
                }
                asn
            }
            None => {
                any_unresponsive = true;
                None
            }
        }))
        .chain(rec.dst_addr.map(|a| map.lookup(a)))
        .collect::<Vec<_>>();
    let mut as_path = AsPath::from_hops(hops);
    let imputed = as_path.impute_bracketed();
    // The AS path is the sequence of *mapped* ASNs (§4.1): hops that stay
    // unknown after imputation are omitted, exactly as an unresponsive hop
    // contributes no ASN to the paper's path strings. Without this, every
    // transient rate-limited hop would mint a phantom "new" AS path and
    // the change detector would count routing changes that never happened.
    let as_path = AsPath::from_hops(as_path.hops().iter().copied().flatten().map(Some));
    let completeness = if any_unresponsive {
        Completeness::MissingIpLevel
    } else if any_unmapped {
        Completeness::MissingAsLevel
    } else {
        Completeness::CompleteAsLevel
    };
    Annotated { has_loop: as_path.has_loop(), as_path, completeness, imputed }
}

/// Maps a bare hop-address sequence to an AS path (with imputation) — the
/// same procedure [`annotate`] applies to full records, for callers that
/// only kept the addresses (e.g. a campaign's reference path).
pub fn as_path_of_addrs(
    addrs: &[Option<std::net::IpAddr>],
    dst_addr: Option<std::net::IpAddr>,
    map: &Ip2AsnMap,
) -> AsPath {
    let hops = addrs
        .iter()
        .map(|a| a.and_then(|addr| map.lookup(addr).filter(|asn| !map.is_ixp(*asn))))
        .chain(dst_addr.map(|a| map.lookup(a)));
    let mut p = AsPath::from_hops(hops);
    p.impute_bracketed();
    // Same normalization as [`annotate`]: unknown hops are omitted.
    AsPath::from_hops(p.hops().iter().copied().flatten().map(Some))
}

/// Running Table-1 tallies over annotated traceroutes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletenessCounts {
    /// Traceroutes with complete AS-level data.
    pub complete: u64,
    /// Traceroutes with a responsive but unmapped hop.
    pub missing_as_level: u64,
    /// Traceroutes with an unresponsive hop.
    pub missing_ip_level: u64,
    /// Traceroutes that never reached the destination (excluded from the
    /// three classes above, as in the paper).
    pub incomplete: u64,
    /// Completed traceroutes whose AS path loops.
    pub loops: u64,
}

impl CompletenessCounts {
    /// Folds one record (and its annotation) into the tallies.
    pub fn add(&mut self, rec: &TracerouteRecord, ann: &Annotated) {
        self.add_outcome(rec.reached, ann);
    }

    /// The record-free core of [`CompletenessCounts::add`]: the tallies
    /// depend only on the reached flag and the annotation, so the columnar
    /// plane (which never materializes a record) folds through here.
    pub fn add_outcome(&mut self, reached: bool, ann: &Annotated) {
        if !reached {
            self.incomplete += 1;
            return;
        }
        match ann.completeness {
            Completeness::CompleteAsLevel => self.complete += 1,
            Completeness::MissingAsLevel => self.missing_as_level += 1,
            Completeness::MissingIpLevel => self.missing_ip_level += 1,
        }
        if ann.has_loop {
            self.loops += 1;
        }
    }

    /// Completed traceroutes (the denominator of Table 1's percentages).
    pub fn completed(&self) -> u64 {
        self.complete + self.missing_as_level + self.missing_ip_level
    }

    /// The three Table-1 fractions: (complete, missing-AS, missing-IP).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let d = self.completed() as f64;
        if d == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.complete as f64 / d,
            self.missing_as_level as f64 / d,
            self.missing_ip_level as f64 / d,
        )
    }

    /// Fraction of completed traceroutes with AS-path loops.
    pub fn loop_fraction(&self) -> f64 {
        let d = self.completed() as f64;
        if d == 0.0 {
            0.0
        } else {
            self.loops as f64 / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_bgp::Ip2AsnMap;
    use s2s_probe::HopObs;
    use s2s_types::{Asn, ClusterId, IpNet, Ipv4Net, Protocol, SimTime};
    use std::net::Ipv4Addr;

    fn map() -> Ip2AsnMap {
        let anns = vec![
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 1, 0, 0), 16)), Asn::new(100)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 2, 0, 0), 16)), Asn::new(200)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 3, 0, 0), 16)), Asn::new(300)),
        ];
        Ip2AsnMap::from_announcements(&anns)
    }

    fn rec(addrs: &[Option<&str>], dst: Option<&str>) -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            t: SimTime::T0,
            hops: addrs
                .iter()
                .map(|a| HopObs {
                    addr: a.map(|s| s.parse().unwrap()),
                    rtt_ms: a.map(|_| 1.0),
                })
                .collect(),
            reached: true,
            e2e_rtt_ms: Some(50.0),
            src_addr: None,
            dst_addr: dst.map(|s| s.parse().unwrap()),
        }
    }

    #[test]
    fn clean_trace_is_complete() {
        let r = rec(
            &[Some("10.1.0.1"), Some("10.1.0.5"), Some("10.2.0.1")],
            Some("10.3.0.9"),
        );
        let a = annotate(&r, &map());
        assert_eq!(a.completeness, Completeness::CompleteAsLevel);
        assert!(!a.has_loop);
        assert_eq!(
            a.as_path,
            AsPath::from_asns([Asn::new(100), Asn::new(200), Asn::new(300)])
        );
    }

    #[test]
    fn unresponsive_hop_is_missing_ip_level() {
        let r = rec(&[Some("10.1.0.1"), None, Some("10.2.0.1")], Some("10.2.0.9"));
        let a = annotate(&r, &map());
        assert_eq!(a.completeness, Completeness::MissingIpLevel);
        // The gap between different ASes is not imputable; the AS path
        // keeps only the mapped hops (so a transient silent hop does not
        // mint a phantom "new" AS path).
        assert_eq!(a.imputed, 0);
        assert_eq!(a.as_path, AsPath::from_asns([Asn::new(100), Asn::new(200)]));
    }

    #[test]
    fn unmapped_hop_is_missing_as_level() {
        let r = rec(&[Some("10.1.0.1"), Some("192.168.0.1")], Some("10.2.0.9"));
        let a = annotate(&r, &map());
        assert_eq!(a.completeness, Completeness::MissingAsLevel);
    }

    #[test]
    fn unresponsive_beats_unmapped_in_classification() {
        // Paper's Table 1 rows are disjoint; missing IP-level wins.
        let r = rec(&[Some("192.168.0.1"), None], Some("10.2.0.9"));
        let a = annotate(&r, &map());
        assert_eq!(a.completeness, Completeness::MissingIpLevel);
    }

    #[test]
    fn imputation_bridges_same_as_gap() {
        let r = rec(
            &[Some("10.1.0.1"), None, Some("10.1.0.7"), Some("10.2.0.1")],
            Some("10.2.0.9"),
        );
        let a = annotate(&r, &map());
        assert_eq!(a.imputed, 1);
        assert!(a.as_path.is_complete());
        assert_eq!(a.as_path, AsPath::from_asns([Asn::new(100), Asn::new(200)]));
        // Classification still records the unresponsive hop.
        assert_eq!(a.completeness, Completeness::MissingIpLevel);
    }

    #[test]
    fn loops_are_flagged() {
        let r = rec(
            &[Some("10.1.0.1"), Some("10.2.0.1"), Some("10.1.0.9")],
            Some("10.3.0.9"),
        );
        let a = annotate(&r, &map());
        assert!(a.has_loop);
    }

    #[test]
    fn destination_as_is_appended() {
        let r = rec(&[Some("10.1.0.1")], Some("10.3.0.9"));
        let a = annotate(&r, &map());
        assert_eq!(a.as_path.last(), Some(Asn::new(300)));
    }

    #[test]
    fn counts_fold_and_fraction() {
        let m = map();
        let mut c = CompletenessCounts::default();
        let complete = rec(&[Some("10.1.0.1")], Some("10.2.0.9"));
        let missing_ip = rec(&[Some("10.1.0.1"), None], Some("10.2.0.9"));
        let missing_as = rec(&[Some("8.8.8.8")], Some("10.2.0.9"));
        let mut unreached = rec(&[Some("10.1.0.1")], None);
        unreached.reached = false;
        for r in [&complete, &complete, &missing_ip, &missing_as, &unreached] {
            let a = annotate(r, &m);
            c.add(r, &a);
        }
        assert_eq!(c.completed(), 4);
        assert_eq!(c.incomplete, 1);
        let (f_ok, f_as, f_ip) = c.fractions();
        assert_eq!(f_ok, 0.5);
        assert_eq!(f_as, 0.25);
        assert_eq!(f_ip, 0.25);
        assert_eq!(c.loop_fraction(), 0.0);
    }

    #[test]
    fn empty_counts_have_zero_fractions() {
        let c = CompletenessCounts::default();
        assert_eq!(c.fractions(), (0.0, 0.0, 0.0));
        assert_eq!(c.loop_fraction(), 0.0);
    }
}
