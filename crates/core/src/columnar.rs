//! The columnar analysis driver: memoized annotation over a
//! [`TraceStore`], sharded across threads with a deterministic merge.
//!
//! The legacy pipeline annotates once per record: every hop address walks
//! the ip2asn trie, every trace builds an [`AsPath`] from scratch. But an
//! annotation depends only on the trace's *interned* identity — the hop
//! sequence plus the endpoint addresses — and the paper's few-distinct-
//! paths property (§4) means a 16-month timeline has thousands of traces
//! over a handful of identities. This module exploits that:
//!
//! * [`AddrAsnTable`] batch-resolves the store's address intern table —
//!   one trie walk per distinct address in the corpus,
//! * [`ColumnarAnnotator`] memoizes full annotations per
//!   `(hop-sequence id, src-addr id, dst-addr id)` key,
//! * [`Analysis::timelines`](crate::Analysis::timelines) (the driver
//!   lives here) shards the (src, dst, protocol) groups across
//!   `std::thread::scope` workers in contiguous chunks and writes each
//!   group's timeline into its pre-assigned slot, so the output order —
//!   and every byte of it — is independent of the thread count and
//!   identical to the sequential legacy path (pinned by the equivalence
//!   suite in `tests/`),
//! * [`Analysis::ownership`](crate::Analysis::ownership) runs ownership
//!   inference once per distinct reached hop sequence (the heuristics
//!   consume *sets* of links/triples, so deduplication is exact, not
//!   approximate).
//!
//! [`Analysis::new`](crate::Analysis::new) is the only entry point — the
//! deprecated `timelines_from_store*` / `infer_ownership_store` free
//! functions that predated the builder are gone. For out-of-core inputs
//! the same driver runs incrementally: `StreamingTimelines` folds trace
//! batches from a `SnapshotReader` (or a shard directory) into per-group
//! timelines in stream order, byte-identical to the materialized path.
//!
//! Everything is instrumented through `s2s-obs` when a registry is
//! installed (`analysis.*` spans and counters, `trace_store.*` gauges);
//! with no registry the hooks cost one relaxed atomic load.

use crate::annotate::{Annotated, Completeness, CompletenessCounts};
use crate::ownership::{infer_ownership, OwnershipInference};
use crate::timeline::{Sample, TraceTimeline};
use s2s_bgp::{AsRelStore, Ip2AsnMap};
use s2s_probe::store::{TraceStore, TraceView, NO_ADDR};
use s2s_types::{AsPath, Asn, ClusterId, Protocol};
use std::collections::HashMap;
use std::net::IpAddr;

/// Per-interned-address ASN tables: the batch ip2asn resolution of a
/// store's address table, raw and IXP-filtered.
pub struct AddrAsnTable {
    raw: Vec<Option<Asn>>,
    non_ixp: Vec<Option<Asn>>,
}

impl AddrAsnTable {
    /// Resolves every interned address of `store` once.
    pub fn build(store: &TraceStore, map: &Ip2AsnMap) -> AddrAsnTable {
        let raw = map.lookup_batch(store.addrs());
        let non_ixp = raw.iter().map(|&o| o.filter(|a| !map.is_ixp(*a))).collect();
        AddrAsnTable { raw, non_ixp }
    }

    /// The raw longest-prefix mapping of an interned address.
    pub fn raw_of(&self, id: u32) -> Option<Asn> {
        self.raw[id as usize]
    }

    /// The mapping with the IXP-fabric filter applied (the middle-hop rule
    /// of [`crate::annotate::annotate`]).
    pub fn non_ixp_of(&self, id: u32) -> Option<Asn> {
        self.non_ixp[id as usize]
    }

    /// Number of addresses resolved.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

/// Annotates trace views with a memo per interned identity. Produces
/// exactly what [`crate::annotate::annotate`] produces for the
/// materialized record — the annotation depends only on the hop-address
/// sequence and the endpoint addresses, all of which are interned.
pub struct ColumnarAnnotator<'a> {
    table: &'a AddrAsnTable,
    memo: HashMap<(u32, u32, u32), Annotated>,
    hits: u64,
}

impl<'a> ColumnarAnnotator<'a> {
    /// A fresh annotator (one per shard thread; the table is shared).
    pub fn new(table: &'a AddrAsnTable) -> ColumnarAnnotator<'a> {
        ColumnarAnnotator { table, memo: HashMap::new(), hits: 0 }
    }

    /// The annotation of one trace view (memoized).
    pub fn annotate(&mut self, v: TraceView<'_>) -> &Annotated {
        let key = (v.seq_id(), v.src_addr_id(), v.dst_addr_id());
        use std::collections::hash_map::Entry;
        match self.memo.entry(key) {
            Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            Entry::Vacant(e) => e.insert(annotate_view(v, self.table)),
        }
    }

    /// (memo hits, distinct annotations computed).
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.hits, self.memo.len() as u64)
    }
}

/// The annotation procedure of [`crate::annotate::annotate`], over interned
/// ids: source/destination addresses use the raw mapping, middle hops use
/// the IXP-filtered one, unresponsive and unmapped hops set the Table-1
/// flags, then duplicate-collapse → bracketed imputation → unknown-hop
/// omission, exactly in that order.
fn annotate_view(v: TraceView<'_>, t: &AddrAsnTable) -> Annotated {
    let mut any_unmapped = false;
    let mut any_unresponsive = false;
    let src = v.src_addr_id();
    let dst = v.dst_addr_id();
    let hops = (src != NO_ADDR)
        .then(|| t.raw_of(src))
        .into_iter()
        .chain(v.hop_ids().iter().map(|&id| {
            if id == NO_ADDR {
                any_unresponsive = true;
                None
            } else {
                if t.raw_of(id).is_none() {
                    any_unmapped = true;
                }
                t.non_ixp_of(id)
            }
        }))
        .chain((dst != NO_ADDR).then(|| t.raw_of(dst)))
        .collect::<Vec<_>>();
    let mut as_path = AsPath::from_hops(hops);
    let imputed = as_path.impute_bracketed();
    let as_path = AsPath::from_hops(as_path.hops().iter().copied().flatten().map(Some));
    let completeness = if any_unresponsive {
        Completeness::MissingIpLevel
    } else if any_unmapped {
        Completeness::MissingAsLevel
    } else {
        Completeness::CompleteAsLevel
    };
    Annotated { has_loop: as_path.has_loop(), as_path, completeness, imputed }
}

/// One (src, dst, protocol) group of trace rows, in store order.
struct Group {
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    traces: Vec<u32>,
}

/// Partitions a store's rows by (src, dst, protocol), groups in first-seen
/// order, rows within a group in store (time) order — the same order the
/// legacy streaming builders produce timelines in.
fn group_traces(store: &TraceStore) -> Vec<Group> {
    let mut index: HashMap<(ClusterId, ClusterId, Protocol), usize> = HashMap::new();
    let mut groups: Vec<Group> = Vec::new();
    for v in store.iter() {
        let key = (v.src(), v.dst(), v.proto());
        let gi = *index.entry(key).or_insert_with(|| {
            groups.push(Group { src: key.0, dst: key.1, proto: key.2, traces: Vec::new() });
            groups.len() - 1
        });
        groups[gi].traces.push(v.index() as u32);
    }
    groups
}

/// Builds one group's timeline — the columnar equivalent of feeding the
/// group's records through [`crate::timeline::TimelineBuilder`].
fn build_timeline(
    store: &TraceStore,
    g: &Group,
    ann: &mut ColumnarAnnotator<'_>,
) -> TraceTimeline {
    let mut tl = TraceTimeline {
        src: g.src,
        dst: g.dst,
        proto: g.proto,
        paths: Vec::new(),
        samples: Vec::new(),
        counts: CompletenessCounts::default(),
    };
    for &i in &g.traces {
        let v = store.view(i as usize);
        let reached = v.reached();
        let a = ann.annotate(v);
        tl.counts.add_outcome(reached, a);
        let path = if reached && !a.has_loop {
            Some(intern_path(&mut tl.paths, &a.as_path))
        } else {
            None
        };
        tl.samples.push(Sample {
            t: v.t(),
            path,
            rtt_ms: v.e2e_rtt_ms().filter(|_| path.is_some()).map(|r| r as f32),
        });
    }
    tl
}

/// Per-timeline path interning, identical to `TimelineBuilder::intern` but
/// borrowing the memoized path (it only clones on first sight).
fn intern_path(paths: &mut Vec<AsPath>, p: &AsPath) -> u16 {
    if let Some(i) = paths.iter().position(|q| q == p) {
        return i as u16;
    }
    assert!(
        paths.len() < u16::MAX as usize,
        "more than 65k distinct AS paths on one timeline"
    );
    paths.push(p.clone());
    (paths.len() - 1) as u16
}

/// An incremental timeline builder over streamed trace batches: the
/// out-of-core counterpart of the grouped driver below. Traces are folded
/// in stream order; because the materialized driver also visits each
/// group's traces in store order, keeps groups in first-seen order, and
/// interns paths per group in trace order, the finished timelines are
/// byte-identical to `timelines_from_store_impl` over the concatenation
/// of all batches — regardless of batch boundaries.
#[derive(Clone, Debug, Default)]
pub(crate) struct StreamingTimelines {
    index: HashMap<(ClusterId, ClusterId, Protocol), usize>,
    timelines: Vec<TraceTimeline>,
}

impl StreamingTimelines {
    pub(crate) fn new() -> StreamingTimelines {
        StreamingTimelines { index: HashMap::new(), timelines: Vec::new() }
    }

    /// Folds one batch in, annotating through `ann`. The annotator must be
    /// built against the arena the batch's interned ids resolve in (one
    /// fresh annotator per shard — ids are shard-local, annotations are
    /// not, so shard-local memos produce identical `Annotated` values).
    pub(crate) fn absorb_batch(&mut self, batch: &TraceStore, ann: &mut ColumnarAnnotator<'_>) {
        self.absorb_batch_with(batch, ann, |_, _| {});
    }

    /// [`absorb_batch`](Self::absorb_batch) with a per-sample hook: after
    /// each trace folds into its group, `on_sample` sees the group index
    /// and the timeline (whose last sample is the one just pushed). This
    /// is how the incremental analysis keeps per-pair fold state exactly
    /// in step with the timelines, without a second pass.
    pub(crate) fn absorb_batch_with(
        &mut self,
        batch: &TraceStore,
        ann: &mut ColumnarAnnotator<'_>,
        mut on_sample: impl FnMut(usize, &TraceTimeline),
    ) {
        use std::collections::hash_map::Entry;
        for v in batch.iter() {
            let key = (v.src(), v.dst(), v.proto());
            let gi = match self.index.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let gi = self.timelines.len();
                    self.timelines.push(TraceTimeline {
                        src: key.0,
                        dst: key.1,
                        proto: key.2,
                        paths: Vec::new(),
                        samples: Vec::new(),
                        counts: CompletenessCounts::default(),
                    });
                    e.insert(gi);
                    gi
                }
            };
            let tl = &mut self.timelines[gi];
            let reached = v.reached();
            let a = ann.annotate(v);
            tl.counts.add_outcome(reached, a);
            let path = if reached && !a.has_loop {
                Some(intern_path(&mut tl.paths, &a.as_path))
            } else {
                None
            };
            tl.samples.push(Sample {
                t: v.t(),
                path,
                rtt_ms: v.e2e_rtt_ms().filter(|_| path.is_some()).map(|r| r as f32),
            });
            on_sample(gi, &self.timelines[gi]);
        }
    }

    /// The timelines built so far, one per group in first-seen order.
    pub(crate) fn timelines(&self) -> &[TraceTimeline] {
        &self.timelines
    }

    /// Streams one open snapshot reader to exhaustion: the address table
    /// resolves once from the reader's arena, then every batch folds in.
    pub(crate) fn absorb_reader<R: std::io::Read>(
        &mut self,
        reader: &mut s2s_probe::SnapshotReader<R>,
        map: &Ip2AsnMap,
    ) -> std::io::Result<()> {
        let table = s2s_obs::timed("analysis.addr_tables", || {
            AddrAsnTable::build(reader.arena(), map)
        });
        let mut ann = ColumnarAnnotator::new(&table);
        while let Some(batch) = reader.next_batch()? {
            self.absorb_batch(batch, &mut ann);
        }
        let (hits, distinct) = ann.memo_stats();
        s2s_obs::add("analysis.annotation_memo_hits", hits);
        s2s_obs::add("analysis.annotations_computed", distinct);
        Ok(())
    }

    /// The finished timelines, one per (src, dst, protocol) group in
    /// first-seen order.
    pub(crate) fn finish(self) -> Vec<TraceTimeline> {
        self.timelines
    }
}

/// The sharded parallel analysis driver behind
/// [`Analysis::timelines`](crate::Analysis::timelines). Groups are split
/// into contiguous chunks, one scoped thread per chunk, each thread
/// running its own memoizing annotator over the shared address table;
/// every group's timeline lands in its pre-assigned output slot, so the
/// result is byte-identical across thread counts — and to the legacy
/// record-based pipeline (the equivalence suite pins both).
pub(crate) fn timelines_from_store_impl(
    store: &TraceStore,
    map: &Ip2AsnMap,
    threads: usize,
) -> Vec<TraceTimeline> {
    s2s_obs::timed("analysis.columnar", || {
        if let Some(reg) = s2s_obs::installed() {
            store.publish(&reg);
        }
        let table = s2s_obs::timed("analysis.addr_tables", || AddrAsnTable::build(store, map));
        let groups = s2s_obs::timed("analysis.group", || group_traces(store));
        let threads = threads.max(1).min(groups.len().max(1));
        let mut out: Vec<Option<TraceTimeline>> = (0..groups.len()).map(|_| None).collect();
        let (hits, distinct) = s2s_obs::timed("analysis.shards", || {
            let per = (groups.len() + threads - 1) / threads.max(1);
            let mut hits = 0u64;
            let mut distinct = 0u64;
            if threads <= 1 {
                let mut ann = ColumnarAnnotator::new(&table);
                for (g, slot) in groups.iter().zip(out.iter_mut()) {
                    *slot = Some(build_timeline(store, g, &mut ann));
                }
                (hits, distinct) = ann.memo_stats();
            } else {
                std::thread::scope(|sc| {
                    let handles: Vec<_> = groups
                        .chunks(per)
                        .zip(out.chunks_mut(per))
                        .map(|(gs, os)| {
                            let table = &table;
                            sc.spawn(move || {
                                let mut ann = ColumnarAnnotator::new(table);
                                for (g, slot) in gs.iter().zip(os.iter_mut()) {
                                    *slot = Some(build_timeline(store, g, &mut ann));
                                }
                                ann.memo_stats()
                            })
                        })
                        .collect();
                    for h in handles {
                        let (a, b) = h.join().expect("analysis shard panicked");
                        hits += a;
                        distinct += b;
                    }
                });
            }
            (hits, distinct)
        });
        s2s_obs::add("analysis.annotation_memo_hits", hits);
        s2s_obs::add("analysis.annotations_computed", distinct);
        s2s_obs::event("analysis.columnar", || {
            format!(
                "{} traces, {} groups, {} distinct annotations, {} memo hits",
                store.len(),
                groups.len(),
                distinct,
                hits
            )
        });
        out.into_iter()
            .map(|t| t.expect("every group gets a timeline"))
            .collect()
    })
}

/// Ownership inference over a store, behind
/// [`Analysis::ownership`](crate::Analysis::ownership): each distinct hop
/// sequence seen on at least one *reached* trace contributes once. The
/// heuristics consume sets of links and (x, y, z) triples, so per-sequence
/// deduplication yields the identical inference to feeding every trace's
/// path — at a fraction of the work when the few-distinct-paths property
/// holds.
pub(crate) fn infer_ownership_store_impl(
    store: &TraceStore,
    map: &Ip2AsnMap,
    rels: &AsRelStore,
) -> OwnershipInference {
    let mut seen = vec![false; store.seq_count()];
    for v in store.iter() {
        if v.reached() {
            seen[v.seq_id() as usize] = true;
        }
    }
    let paths: Vec<Vec<Option<IpAddr>>> = seen
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s)
        .map(|(seq, _)| {
            store
                .seq_hops(seq as u32)
                .iter()
                .map(|&id| (id != NO_ADDR).then(|| store.addr(id)))
                .collect()
        })
        .collect();
    s2s_obs::add("analysis.ownership_seqs", paths.len() as u64);
    infer_ownership(&paths, map, rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::timeline::TimelineBuilder;
    use s2s_probe::{HopObs, TracerouteRecord};
    use s2s_types::{IpNet, Ipv4Net, SimTime};
    use std::net::Ipv4Addr;

    fn map() -> Ip2AsnMap {
        let anns = vec![
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 1, 0, 0), 16)), Asn::new(100)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 2, 0, 0), 16)), Asn::new(200)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 3, 0, 0), 16)), Asn::new(300)),
        ];
        let mut m = Ip2AsnMap::from_announcements(&anns);
        m.announce(
            IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 9, 0, 0), 16)),
            Asn::new(900),
        );
        m.mark_ixp(Asn::new(900));
        m
    }

    fn rec(
        src: u32,
        dst: u32,
        t: u32,
        addrs: &[Option<&str>],
        reached: bool,
    ) -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(src),
            dst: ClusterId::new(dst),
            proto: Protocol::V4,
            t: SimTime::from_minutes(t),
            hops: addrs
                .iter()
                .map(|a| HopObs {
                    addr: a.map(|s| s.parse().unwrap()),
                    rtt_ms: a.map(|_| 1.0),
                })
                .collect(),
            reached,
            e2e_rtt_ms: reached.then_some(50.0),
            src_addr: Some("10.1.0.200".parse().unwrap()),
            dst_addr: reached.then(|| "10.3.0.9".parse().unwrap()),
        }
    }

    /// A corpus exercising every annotation branch: clean paths, IXP hops,
    /// unresponsive hops, unmapped hops, loops, unreached traces, and two
    /// interleaved pairs.
    fn corpus() -> Vec<TracerouteRecord> {
        vec![
            rec(0, 1, 0, &[Some("10.1.0.1"), Some("10.2.0.1")], true),
            rec(0, 1, 180, &[Some("10.1.0.1"), Some("10.2.0.2")], true),
            rec(0, 1, 360, &[Some("10.1.0.1"), None, Some("10.2.0.1")], true),
            rec(0, 1, 540, &[Some("10.1.0.1"), Some("10.9.0.5"), Some("10.2.0.1")], true),
            rec(0, 1, 720, &[Some("10.1.0.1"), Some("192.168.0.1")], true),
            rec(0, 1, 900, &[Some("10.1.0.1"), Some("10.2.0.1"), Some("10.1.0.9")], true),
            rec(0, 1, 1080, &[Some("10.1.0.1")], false),
            rec(2, 3, 0, &[Some("10.2.0.7"), Some("10.3.0.1")], true),
            rec(2, 3, 180, &[Some("10.2.0.7"), Some("10.3.0.1")], true),
        ]
    }

    #[test]
    fn columnar_annotation_matches_legacy_per_record() {
        let m = map();
        let recs = corpus();
        let store = TraceStore::from_records(&recs);
        let table = AddrAsnTable::build(&store, &m);
        let mut ann = ColumnarAnnotator::new(&table);
        for (i, r) in recs.iter().enumerate() {
            let legacy = annotate(r, &m);
            let columnar = ann.annotate(store.view(i));
            assert_eq!(*columnar, legacy, "record {i} diverged");
        }
        let (hits, distinct) = ann.memo_stats();
        assert!(hits > 0, "repeated identities must hit the memo");
        assert!((distinct as usize) < recs.len());
    }

    #[test]
    fn columnar_timelines_match_timeline_builder() {
        let m = map();
        let recs = corpus();
        let store = TraceStore::from_records(&recs);
        // Legacy: group manually in first-seen order, stream through the
        // builder.
        let mut legacy: Vec<TraceTimeline> = Vec::new();
        let mut builders: Vec<((ClusterId, ClusterId, Protocol), TimelineBuilder)> = Vec::new();
        for r in &recs {
            let key = (r.src, r.dst, r.proto);
            if !builders.iter().any(|(k, _)| *k == key) {
                builders.push((key, TimelineBuilder::new(r.src, r.dst, r.proto, &m)));
            }
            let b = &mut builders.iter_mut().find(|(k, _)| *k == key).unwrap().1;
            b.push(r.clone());
        }
        for (_, b) in builders {
            legacy.push(b.finish());
        }
        for threads in [1, 2, 4, 7] {
            let columnar = timelines_from_store_impl(&store, &m, threads);
            assert_eq!(columnar, legacy, "threads={threads} diverged");
            assert_eq!(
                format!("{columnar:?}"),
                format!("{legacy:?}"),
                "threads={threads} byte divergence"
            );
        }
    }

    #[test]
    fn ownership_store_matches_per_trace_inference() {
        let m = map();
        let rels = AsRelStore::default();
        let recs = corpus();
        let store = TraceStore::from_records(&recs);
        let per_trace: Vec<Vec<Option<IpAddr>>> = recs
            .iter()
            .filter(|r| r.reached)
            .map(|r| r.hops.iter().map(|h| h.addr).collect())
            .collect();
        let legacy = infer_ownership(&per_trace, &m, &rels);
        let columnar = infer_ownership_store_impl(&store, &m, &rels);
        assert_eq!(columnar.owners, legacy.owners);
        // Label multisets per address match (order may differ: the sets
        // iterate in hash order).
        assert_eq!(columnar.labels.len(), legacy.labels.len());
        for (addr, labels) in &legacy.labels {
            let mut a = labels.clone();
            let mut b = columnar.labels.get(addr).expect("address missing").clone();
            a.sort_by_key(|(asn, h)| (asn.value(), format!("{h:?}")));
            b.sort_by_key(|(asn, h)| (asn.value(), format!("{h:?}")));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_store_yields_no_timelines() {
        let m = map();
        let store = TraceStore::new();
        assert!(timelines_from_store_impl(&store, &m, 1).is_empty());
        assert!(timelines_from_store_impl(&store, &m, 8).is_empty());
    }

    #[test]
    fn streaming_timelines_match_materialized_at_any_batch_split() {
        let m = map();
        let recs = corpus();
        let store = TraceStore::from_records(&recs);
        let materialized = timelines_from_store_impl(&store, &m, 3);
        // Feed the same traces in stream order through arbitrary batch
        // splits: every split must yield byte-identical timelines.
        for split in 1..=recs.len() {
            let mut stream = StreamingTimelines::new();
            for chunk in recs.chunks(split) {
                // Batch stores sharing one arena: rebuild per chunk from
                // the same global store views (ids resolve in `store`).
                let mut batch = TraceStore::new();
                for r in chunk {
                    batch.push(r);
                }
                let batch_table = AddrAsnTable::build(&batch, &m);
                let mut batch_ann = ColumnarAnnotator::new(&batch_table);
                stream.absorb_batch(&batch, &mut batch_ann);
            }
            let streamed = stream.finish();
            assert_eq!(streamed, materialized, "split={split} diverged");
            assert_eq!(
                format!("{streamed:?}"),
                format!("{materialized:?}"),
                "split={split} byte divergence"
            );
        }
    }
}
