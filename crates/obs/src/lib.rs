//! Zero-dependency observability for the `s2s` workspace.
//!
//! A 16-month measurement campaign only survives in production when the
//! operators can see inside it. This crate is the seam that makes that
//! possible without perturbing the measurements themselves:
//!
//! * [`Registry`] — a lock-cheap metrics registry: [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket latency [`Histogram`]s, all plain
//!   atomics behind a shared `Arc`, so hot loops pay one relaxed
//!   `fetch_add` per update and readers never block writers,
//! * [`timed`] — lightweight span timing accumulating count / total / max
//!   per label ([`SpanStats`]),
//! * a bounded in-memory event log ([`Registry::event`]) for *rare*
//!   events — worker panics, retry exhaustion, checkpoint writes, LRU
//!   evictions — capped so a misbehaving caller cannot leak memory,
//! * [`Snapshot`] — a point-in-time copy with a schema-stable JSON
//!   rendering (keys sorted, layout fixed) and a human summary table.
//!
//! Instrumentation is compiled in but **effectively free when disabled**:
//! every global helper guards on one relaxed [`AtomicBool`] load and
//! no-ops unless a registry has been [`install`]ed. Nothing in this crate
//! feeds back into simulation state, so enabling metrics can never change
//! a dataset — the byte-identity suites run with metrics on to prove it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Atomically adds `v` to an f64 stored as bits in an [`AtomicU64`].
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Default bucket upper bounds (milliseconds) for latency histograms.
pub const DEFAULT_LATENCY_BOUNDS_MS: &[f64] =
    &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0];

/// A fixed-bucket histogram of non-negative values (latencies, sizes).
///
/// Buckets are cumulative-compatible: `buckets[i]` counts observations
/// `<= bounds[i]`; one overflow bucket catches the rest. `sum` and `max`
/// ride atomic f64 bit patterns — for non-negative IEEE floats the bit
/// order matches the numeric order, so `max` is a plain `fetch_max`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    /// Records one non-negative observation (negative values clamp to 0).
    pub fn observe(&self, v: f64) {
        let v = if v.is_nan() { return } else { v.max(0.0) };
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&self.sum_bits, v);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts as `(upper_bound, count)`; the final entry is the
    /// overflow bucket with an infinite bound.
    pub fn bucket_counts(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Accumulated timing for one span label: count, total, and max.
#[derive(Debug, Default)]
pub struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    /// A fresh zeroed accumulator.
    pub fn new() -> SpanStats {
        SpanStats::default()
    }

    /// Folds one span duration in.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of spans recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total time across all spans.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed))
    }

    /// Longest single span.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }
}

/// One entry in the bounded event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotone sequence number (survives eviction, so gaps reveal drops).
    pub seq: u64,
    /// What kind of event this is, e.g. `"campaign.worker_panic"`.
    pub label: String,
    /// Free-form detail.
    pub detail: String,
}

/// How many events the log retains before dropping the oldest.
const EVENT_LOG_CAP: usize = 256;

/// The metrics registry: named counters, gauges, histograms, span
/// accumulators, and a bounded event log.
///
/// All accessors are get-or-create and hand back `Arc`s, so callers cache
/// the handle once and update a plain atomic afterwards. Existing atomics
/// can be *shared into* the registry (e.g. [`Registry::register_counter`])
/// so subsystems keep their own fields and snapshots still see them live.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<String, Arc<SpanStats>>>,
    events: Mutex<std::collections::VecDeque<EventRecord>>,
    event_seq: AtomicU64,
}

/// Get-or-create in one of the registry's maps (read-lock fast path).
fn get_or_insert<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    mk: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(v) = map.read().expect("obs registry poisoned").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("obs registry poisoned");
    Arc::clone(w.entry(name.to_string()).or_insert_with(|| Arc::new(mk())))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::new)
    }

    /// Shares an existing counter into the registry under `name`, so
    /// snapshots see the owner's live value. Returns the counter that is
    /// registered after the call (an earlier registration wins).
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) -> Arc<Counter> {
        let mut w = self.counters.write().expect("obs registry poisoned");
        Arc::clone(w.entry(name.to_string()).or_insert(counter))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(bounds))
    }

    /// The span accumulator named `name`, created on first use.
    pub fn span(&self, name: &str) -> Arc<SpanStats> {
        get_or_insert(&self.spans, name, SpanStats::new)
    }

    /// Appends an event, evicting the oldest entry past the cap. The
    /// sequence number keeps counting across evictions, so a gap between
    /// the first retained `seq` and 0 shows how much history was dropped.
    pub fn event(&self, label: &str, detail: String) {
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        let mut log = self.events.lock().expect("obs event log poisoned");
        if log.len() >= EVENT_LOG_CAP {
            log.pop_front();
        }
        log.push_back(EventRecord { seq, label: to_owned_label(label), detail });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().expect("obs event log poisoned").iter().cloned().collect()
    }

    /// A point-in-time copy of everything in the registry.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: v.count(),
                        sum: v.sum(),
                        max: v.max(),
                        buckets: v.bucket_counts(),
                    },
                )
            })
            .collect();
        let spans = self
            .spans
            .read()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    SpanSnapshot { count: v.count(), total: v.total(), max: v.max() },
                )
            })
            .collect();
        Snapshot { counters, gauges, histograms, spans, events: self.events() }
    }
}

fn to_owned_label(label: &str) -> String {
    label.to_string()
}

/// A frozen copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// `(upper_bound, count)` per bucket; the last bound is infinite.
    pub buckets: Vec<(f64, u64)>,
}

/// A frozen copy of a [`SpanStats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of spans.
    pub count: u64,
    /// Total time.
    pub total: Duration,
    /// Longest span.
    pub max: Duration,
}

/// A point-in-time copy of a [`Registry`], renderable as schema-stable
/// JSON or a human summary table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span accumulators by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Retained events, oldest first.
    pub events: Vec<EventRecord>,
}

/// Escapes a string for a JSON string literal (no surrounding quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 for JSON (finite decimal; infinities become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// Renders the snapshot as JSON with a stable schema: object keys are
    /// the sorted metric names, layout is fixed, floats print with six
    /// decimals, histogram bucket bounds print with the overflow bound as
    /// `null`. Diffing two dumps diffs only the values.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            s.push_str(if first { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\": {}", json_escape(k), v));
            first = false;
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            s.push_str(if first { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\": {}", json_escape(k), v));
            first = false;
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            s.push_str(if first { "\n" } else { ",\n" });
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, n)| format!("[{}, {}]", json_f64(*le), n))
                .collect();
            s.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                json_escape(k),
                h.count,
                json_f64(h.sum),
                json_f64(h.max),
                buckets.join(", ")
            ));
            first = false;
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"spans\": {");
        first = true;
        for (k, sp) in &self.spans {
            s.push_str(if first { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"total_ms\": {}, \"max_ms\": {}}}",
                json_escape(k),
                sp.count,
                json_f64(sp.total.as_secs_f64() * 1e3),
                json_f64(sp.max.as_secs_f64() * 1e3)
            ));
            first = false;
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"events\": [");
        first = true;
        for e in &self.events {
            s.push_str(if first { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"seq\": {}, \"label\": \"{}\", \"detail\": \"{}\"}}",
                e.seq,
                json_escape(&e.label),
                json_escape(&e.detail)
            ));
            first = false;
        }
        s.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
        s
    }

    /// A terse human-readable table of everything non-empty.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &self.counters {
                s.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                s.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        if !self.spans.is_empty() {
            s.push_str("spans (count / total / max):\n");
            for (k, sp) in &self.spans {
                s.push_str(&format!(
                    "  {k:<40} {} / {:?} / {:?}\n",
                    sp.count, sp.total, sp.max
                ));
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms (count / mean / max):\n");
            for (k, h) in &self.histograms {
                let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
                s.push_str(&format!(
                    "  {k:<40} {} / {mean:.3} / {:.3}\n",
                    h.count, h.max
                ));
            }
        }
        if !self.events.is_empty() {
            // The full retained log is in `events` / the JSON dump; the
            // human summary shows only the tail so a chatty label (cache
            // evictions, say) can't drown the table.
            const SHOWN: usize = 10;
            s.push_str("events");
            if self.events.len() > SHOWN {
                s.push_str(&format!(
                    " (last {SHOWN} of {} retained)", self.events.len()
                ));
            }
            s.push_str(":\n");
            let skip = self.events.len().saturating_sub(SHOWN);
            for e in &self.events[skip..] {
                s.push_str(&format!("  [{}] {}: {}\n", e.seq, e.label, e.detail));
            }
        }
        if s.is_empty() {
            s.push_str("(no metrics recorded)\n");
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Global registry slot
// ---------------------------------------------------------------------------

/// Fast-path guard: one relaxed load decides whether any instrumentation
/// does work at all.
static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Whether a registry is installed. Instrumented hot paths check this
/// first; when false they cost a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `registry` as the process-wide default. Instrumented code all
/// over the workspace starts recording into it immediately.
pub fn install(registry: Arc<Registry>) {
    *GLOBAL.write().expect("obs global slot poisoned") = Some(registry);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the installed registry; instrumentation returns to no-ops.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *GLOBAL.write().expect("obs global slot poisoned") = None;
}

/// The installed registry, if any.
pub fn installed() -> Option<Arc<Registry>> {
    if !enabled() {
        return None;
    }
    GLOBAL.read().expect("obs global slot poisoned").clone()
}

/// Times `f` into the global span accumulator for `label`; just runs `f`
/// when no registry is installed.
#[inline]
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let Some(reg) = installed() else { return f() };
    let t = Instant::now();
    let out = f();
    reg.span(label).record(t.elapsed());
    out
}

/// Bumps the global counter `name` by one (no-op when disabled).
#[inline]
pub fn inc(name: &str) {
    if let Some(reg) = installed() {
        reg.counter(name).inc();
    }
}

/// Bumps the global counter `name` by `n` (no-op when disabled).
#[inline]
pub fn add(name: &str, n: u64) {
    if let Some(reg) = installed() {
        reg.counter(name).add(n);
    }
}

/// Logs an event to the global registry. `detail` is lazy so the disabled
/// path never formats anything.
#[inline]
pub fn event(label: &str, detail: impl FnOnce() -> String) {
    if let Some(reg) = installed() {
        reg.event(label, detail());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5, "same name, same counter");
        let g = r.gauge("g");
        g.set(9);
        g.set(3);
        assert_eq!(r.gauge("g").get(), 3);
    }

    #[test]
    fn registered_counter_is_shared_live() {
        let r = Registry::new();
        let mine = Arc::new(Counter::new());
        r.register_counter("shared", Arc::clone(&mine));
        mine.add(7);
        assert_eq!(r.snapshot().counters["shared"], 7);
        // A second registration under the same name does not displace it.
        let other = Arc::new(Counter::new());
        let kept = r.register_counter("shared", other);
        kept.inc();
        assert_eq!(mine.get(), 8);
    }

    #[test]
    fn histogram_bucketing_is_exact() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.0, 0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 100.1, 1e9] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        h.observe(-3.0); // clamps to 0
        let counts: Vec<u64> = h.bucket_counts().iter().map(|&(_, n)| n).collect();
        // <=1: {0, 0.5, 1.0, 0(clamped)}; <=10: {1.5, 10.0}; <=100: {99.9,
        // 100.0}; overflow: {100.1, 1e9}.
        assert_eq!(counts, vec![4, 2, 2, 2]);
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 1e9);
        let bounds: Vec<f64> = h.bucket_counts().iter().map(|&(b, _)| b).collect();
        assert_eq!(bounds, vec![1.0, 10.0, 100.0, f64::INFINITY]);
        assert!((h.sum() - (0.5 + 1.0 + 1.5 + 10.0 + 99.9 + 100.0 + 100.1 + 1e9)).abs() < 1e-6);
    }

    #[test]
    fn registry_is_consistent_under_concurrent_writers() {
        let r = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 5_000u64;
        thread::scope(|scope| {
            for ti in 0..threads {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    // Everyone hammers one shared counter, plus a private
                    // one, plus the histogram and a span — through the
                    // get-or-create path every iteration.
                    for i in 0..per_thread {
                        r.counter("shared").inc();
                        r.counter(&format!("private.{ti}")).inc();
                        r.histogram("h", &[10.0, 100.0]).observe((i % 200) as f64);
                        r.span("s").record(Duration::from_nanos(i));
                        if i % 1000 == 0 {
                            r.event("tick", format!("t{ti} i{i}"));
                        }
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["shared"], threads as u64 * per_thread);
        for ti in 0..threads {
            assert_eq!(snap.counters[&format!("private.{ti}")], per_thread);
        }
        let h = &snap.histograms["h"];
        assert_eq!(h.count, threads as u64 * per_thread);
        assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), h.count);
        assert_eq!(snap.spans["s"].count, threads as u64 * per_thread);
        assert!(snap.events.len() <= EVENT_LOG_CAP);
    }

    #[test]
    fn event_log_is_bounded_and_keeps_newest() {
        let r = Registry::new();
        for i in 0..(EVENT_LOG_CAP + 10) {
            r.event("e", format!("{i}"));
        }
        let events = r.events();
        assert_eq!(events.len(), EVENT_LOG_CAP);
        assert_eq!(events.first().unwrap().seq, 10, "oldest entries evicted");
        assert_eq!(events.last().unwrap().seq, (EVENT_LOG_CAP + 10 - 1) as u64);
    }

    #[test]
    fn snapshot_json_is_schema_stable() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").inc();
        r.gauge("g").set(5);
        r.histogram("lat", &[1.0, 2.0]).observe(1.5);
        r.span("work").record(Duration::from_millis(3));
        r.event("evt", "hello \"world\"\n".to_string());
        let json = r.snapshot().to_json();
        // Keys sorted, fixed layout.
        assert!(json.find("\"a\": 1").unwrap() < json.find("\"b\": 2").unwrap());
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\"", "\"events\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\\\"world\\\"\\n"), "escaping: {json}");
        // Two snapshots of the same registry render identically.
        assert_eq!(json, r.snapshot().to_json());
        // An empty registry still renders every section.
        let empty = Registry::new().snapshot().to_json();
        for key in ["\"counters\"", "\"events\""] {
            assert!(empty.contains(key));
        }
    }

    #[test]
    fn global_install_gates_helpers() {
        // Serialize with other global-state tests via a dedicated lock.
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        uninstall();
        assert!(!enabled());
        inc("nope");
        assert_eq!(timed("t", || 42), 42);
        event("nope", || unreachable!("detail must not be built when disabled"));

        let reg = Arc::new(Registry::new());
        install(Arc::clone(&reg));
        assert!(enabled());
        inc("yes");
        add("yes", 2);
        let out = timed("t", || 7);
        assert_eq!(out, 7);
        event("e", || "d".to_string());
        uninstall();
        inc("yes"); // after uninstall: dropped
        let snap = reg.snapshot();
        assert_eq!(snap.counters["yes"], 3);
        assert_eq!(snap.spans["t"].count, 1);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn summary_table_mentions_everything() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(1);
        r.histogram("h", &[1.0]).observe(0.5);
        r.span("s").record(Duration::from_micros(10));
        r.event("e", "detail".into());
        let t = r.snapshot().summary_table();
        for needle in ["c", "g", "h", "s", "e: detail"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
        assert_eq!(Registry::new().snapshot().summary_table(), "(no metrics recorded)\n");
    }
}
