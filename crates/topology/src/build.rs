//! The topology generator.
//!
//! Deterministic construction order (every step draws from one seeded RNG):
//!
//! 1. ASes: a tier-1 backbone clique, continent-scoped tier-2 transits,
//!    stubs, and one fabric AS per IXP.
//! 2. PoPs and core routers, placed in real cities.
//! 3. Business relationships and interconnect links (transit, private
//!    peering, IXP public fabric), possibly several parallel links between
//!    one AS pair in different cities — the raw material for routing
//!    changes and ECMP artifacts.
//! 4. Intra-AS backbone links (hub-and-spoke plus nearest-neighbor chords).
//! 5. Addressing: per-AS IPv4 /16 and IPv6 /32, link subnets numbered from
//!    the provider's (or one peer's, or the IXP fabric's) space, a small
//!    share from unannounced pools.
//! 6. CDN cluster deployment with the paper's country mix (39% US, then
//!    AU/DE/IN/JP/CA).
//! 7. BGP announcements.

use crate::model::*;
use crate::params::TopologyParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use s2s_geo::{Continent, CITIES};
use s2s_types::rel::AsRel;
use s2s_types::{Asn, IfaceId, Ipv4Net, Ipv6Net, LinkId, PopId, RouterId};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Generates a topology from parameters. Same params → identical topology.
pub fn build_topology(params: &TopologyParams) -> Topology {
    Builder::new(params.clone()).build()
}

struct Builder {
    params: TopologyParams,
    rng: StdRng,
    ases: Vec<AsNode>,
    as_adj: Vec<Vec<(usize, AsRel)>>,
    pops: Vec<Pop>,
    routers: Vec<Router>,
    links: Vec<Link>,
    ifaces: Vec<Iface>,
    ixps: Vec<Ixp>,
    clusters: Vec<Cluster>,
    router_links: Vec<Vec<LinkId>>,
    interconnects: HashMap<(usize, usize), Vec<LinkId>>,
    /// Per-AS counter of allocated infrastructure /30s (v4) & /126s (v6).
    infra_counter: Vec<u32>,
    /// Counter into the unannounced v4 pool.
    unannounced_counter: u32,
    /// Per-AS counter of server addresses.
    server_counter: Vec<u32>,
}

/// Cities grouped by continent, indices into `CITIES`.
fn cities_by_continent() -> HashMap<Continent, Vec<usize>> {
    let mut m: HashMap<Continent, Vec<usize>> = HashMap::new();
    for (i, c) in CITIES.iter().enumerate() {
        m.entry(c.continent).or_default().push(i);
    }
    m
}

fn city_distance_km(a: usize, b: usize) -> f64 {
    CITIES[a].point().distance_km(&CITIES[b].point())
}

/// One-way link delay between two cities: fiber propagation with a path
/// stretch of 1.25 (real fiber is never a great circle), plus a floor for
/// equipment latency.
fn link_delay_ms(city_a: usize, city_b: usize) -> f64 {
    let d = city_distance_km(city_a, city_b);
    (d * 1.25 / s2s_geo::C_FIBER_KM_PER_MS).max(0.1)
}

impl Builder {
    fn new(params: TopologyParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        Builder {
            params,
            rng,
            ases: Vec::new(),
            as_adj: Vec::new(),
            pops: Vec::new(),
            routers: Vec::new(),
            links: Vec::new(),
            ifaces: Vec::new(),
            ixps: Vec::new(),
            clusters: Vec::new(),
            router_links: Vec::new(),
            interconnects: HashMap::new(),
            infra_counter: Vec::new(),
            unannounced_counter: 0,
            server_counter: Vec::new(),
        }
    }

    fn build(mut self) -> Topology {
        self.gen_ases();
        self.gen_pops();
        self.gen_relationships();
        self.gen_ixps();
        self.gen_internal_links();
        self.gen_clusters();
        let announcements = self.gen_announcements();
        let asn_to_idx =
            self.ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();
        Topology {
            params: self.params,
            ases: self.ases,
            as_adj: self.as_adj,
            pops: self.pops,
            routers: self.routers,
            links: self.links,
            ifaces: self.ifaces,
            ixps: self.ixps,
            clusters: self.clusters,
            announcements,
            router_links: self.router_links,
            interconnects: self.interconnects,
            asn_to_idx,
        }
    }

    // ---- step 1: ASes -------------------------------------------------

    fn gen_ases(&mut self) {
        let p = self.params.clone();
        let conts = cities_by_continent();
        let cont_list: Vec<Continent> = [
            Continent::NorthAmerica,
            Continent::Europe,
            Continent::Asia,
            Continent::Oceania,
            Continent::SouthAmerica,
            Continent::Africa,
        ]
        .into_iter()
        .filter(|c| conts.contains_key(c))
        .collect();
        // Tier-1: global, always dual-stack.
        for i in 0..p.n_tier1 {
            let mpls = self.rng.random_bool(p.mpls_as_prob);
            self.push_as(AsNode {
                asn: Asn::new(1000 + i as u32 * 13),
                tier: Tier::Tier1,
                kind: AsKind::Transit,
                continent: None,
                pops: Vec::new(),
                v4_prefix: Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0), // set later
                v6_prefix: Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 0),
                dual_stack: true,
                mpls,
            });
        }
        // Tier-2: continent-scoped, weighted toward the big continents.
        let weights = [4usize, 4, 3, 1, 1, 1]; // NA, EU, AS, OC, SA, AF
        for i in 0..p.n_tier2 {
            let cont = {
                let total: usize = weights.iter().take(cont_list.len()).sum();
                let mut pick = self.rng.random_range(0..total);
                let mut chosen = cont_list[0];
                for (j, &w) in weights.iter().take(cont_list.len()).enumerate() {
                    if pick < w {
                        chosen = cont_list[j];
                        break;
                    }
                    pick -= w;
                }
                chosen
            };
            let dual = self.rng.random_bool(p.v6_as_fraction);
            let mpls = self.rng.random_bool(p.mpls_as_prob);
            self.push_as(AsNode {
                asn: Asn::new(10_000 + i as u32 * 7),
                tier: Tier::Tier2,
                kind: AsKind::Transit,
                continent: Some(cont),
                pops: Vec::new(),
                v4_prefix: Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0),
                v6_prefix: Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 0),
                dual_stack: dual,
                mpls,
            });
        }
        // Stubs.
        for i in 0..p.n_stub {
            let cont = {
                let total: usize = weights.iter().take(cont_list.len()).sum();
                let mut pick = self.rng.random_range(0..total);
                let mut chosen = cont_list[0];
                for (j, &w) in weights.iter().take(cont_list.len()).enumerate() {
                    if pick < w {
                        chosen = cont_list[j];
                        break;
                    }
                    pick -= w;
                }
                chosen
            };
            let dual = self.rng.random_bool(p.v6_as_fraction);
            let kind =
                if self.rng.random_bool(0.5) { AsKind::Eyeball } else { AsKind::Content };
            self.push_as(AsNode {
                asn: Asn::new(30_000 + i as u32 * 3),
                tier: Tier::Stub,
                kind,
                continent: Some(cont),
                pops: Vec::new(),
                v4_prefix: Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0),
                v6_prefix: Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 0),
                dual_stack: dual,
                mpls: false,
            });
        }
        // Assign address space now that the AS count is final (IXP fabric
        // ASes are appended in gen_ixps and allocate there).
        for i in 0..self.ases.len() {
            let (v4, v6) = alloc_as_prefixes(i);
            self.ases[i].v4_prefix = v4;
            self.ases[i].v6_prefix = v6;
        }
    }

    fn push_as(&mut self, node: AsNode) {
        self.ases.push(node);
        self.as_adj.push(Vec::new());
        self.infra_counter.push(0);
        self.server_counter.push(0);
    }

    // ---- step 2: PoPs --------------------------------------------------

    fn gen_pops(&mut self) {
        let conts = cities_by_continent();
        for i in 0..self.ases.len() {
            let n_pops;
            let candidate_cities: Vec<usize>;
            match self.ases[i].tier {
                Tier::Tier1 => {
                    n_pops = self.rng.random_range(10..=14);
                    candidate_cities = (0..CITIES.len()).collect();
                }
                Tier::Tier2 => {
                    n_pops = self.rng.random_range(3..=6);
                    candidate_cities =
                        conts[&self.ases[i].continent.unwrap()].clone();
                }
                Tier::Stub => {
                    n_pops = self.rng.random_range(1..=2);
                    candidate_cities =
                        conts[&self.ases[i].continent.unwrap()].clone();
                }
            }
            let mut cities = candidate_cities;
            cities.shuffle(&mut self.rng);
            cities.truncate(n_pops.min(cities.len()));
            for city in cities {
                self.add_pop(i, city);
            }
        }
    }

    fn add_pop(&mut self, as_idx: usize, city: usize) -> PopId {
        let pop_id = PopId::from(self.pops.len());
        let router_id = self.add_router(as_idx, pop_id);
        self.pops.push(Pop { as_idx, city, core_router: router_id });
        self.ases[as_idx].pops.push(pop_id);
        pop_id
    }

    fn add_router(&mut self, as_idx: usize, pop: PopId) -> RouterId {
        let id = RouterId::from(self.routers.len());
        let p = &self.params;
        let responsive_v4 = !self.rng.random_bool(p.unresponsive_router_prob);
        let responsive_v6 = !self.rng.random_bool(p.unresponsive_router_prob_v6);
        self.routers.push(Router { as_idx, pop, responsive_v4, responsive_v6 });
        self.router_links.push(Vec::new());
        id
    }

    // ---- step 3: relationships & interconnects -------------------------

    fn gen_relationships(&mut self) {
        let n1 = self.params.n_tier1;
        let n2 = self.params.n_tier2;
        // Tier-1 clique: settlement-free peering, 2-3 parallel links in
        // different cities.
        for a in 0..n1 {
            for b in (a + 1)..n1 {
                self.add_relationship(a, b, AsRel::Peer);
                let n_links = self.rng.random_range(2..=3);
                for _ in 0..n_links {
                    self.add_interconnect(a, b, LinkKind::PrivatePeering);
                }
            }
        }
        // Tier-2: 2-3 tier-1 providers; 1-2 transit links each.
        for t2 in n1..(n1 + n2) {
            let mut providers: Vec<usize> = (0..n1).collect();
            providers.shuffle(&mut self.rng);
            providers.truncate(self.rng.random_range(2..=3.min(n1)));
            for &prov in &providers {
                self.add_relationship(t2, prov, AsRel::Provider);
                let n_links = self.rng.random_range(1..=2);
                for _ in 0..n_links {
                    self.add_interconnect(t2, prov, LinkKind::Transit);
                }
            }
        }
        // Tier-2 <-> tier-2 peering within a continent.
        for a in n1..(n1 + n2) {
            for b in (a + 1)..(n1 + n2) {
                if self.ases[a].continent == self.ases[b].continent
                    && self.rng.random_bool(0.55)
                {
                    self.add_relationship(a, b, AsRel::Peer);
                    self.add_interconnect(a, b, LinkKind::PrivatePeering);
                }
            }
        }
        // Stubs: 1-3 providers, preferring same-continent tier-2s; a small
        // chance of a direct tier-1 provider.
        let stubs: Vec<usize> = ((n1 + n2)..self.ases.len()).collect();
        for s in stubs {
            let cont = self.ases[s].continent;
            let mut candidates: Vec<usize> = (n1..(n1 + n2))
                .filter(|&t| self.ases[t].continent == cont)
                .collect();
            if candidates.is_empty() {
                candidates = (n1..(n1 + n2)).collect();
            }
            candidates.shuffle(&mut self.rng);
            let n_prov = self.rng.random_range(2..=3).min(candidates.len()).max(1);
            for &prov in candidates.iter().take(n_prov) {
                self.add_relationship(s, prov, AsRel::Provider);
                self.add_interconnect(s, prov, LinkKind::Transit);
            }
            if self.rng.random_bool(0.15) {
                let prov = self.rng.random_range(0..n1);
                self.add_relationship(s, prov, AsRel::Provider);
                self.add_interconnect(s, prov, LinkKind::Transit);
            }
        }
    }

    fn add_relationship(&mut self, a: usize, b: usize, rel_a_to_b: AsRel) {
        if self.as_adj[a].iter().any(|(n, _)| *n == b) {
            return;
        }
        self.as_adj[a].push((b, rel_a_to_b));
        self.as_adj[b].push((a, rel_a_to_b.inverse()));
    }

    /// Creates a dedicated border router in a PoP, linked to the PoP's core
    /// router. Every interconnect terminates on one: real AS crossings show
    /// several hops per AS (border + core), so a single rate-limited hop
    /// can't blank an AS out of the inferred path.
    fn add_border_router(&mut self, pop: PopId) -> RouterId {
        let as_idx = self.pops[pop.index()].as_idx;
        let border = self.add_router(as_idx, pop);
        let core = self.pops[pop.index()].core_router;
        self.add_link(border, core, LinkKind::Internal, Some(as_idx));
        border
    }

    /// Creates an interconnect link between two ASes, choosing the pair of
    /// PoPs (one per AS) with an anchor city: a shared city when one exists,
    /// otherwise the geographically closest PoP pair.
    fn add_interconnect(&mut self, a: usize, b: usize, kind: LinkKind) -> LinkId {
        let (pop_a, pop_b) = self.pick_interconnect_pops(a, b);
        let ra = self.add_border_router(pop_a);
        let rb = self.add_border_router(pop_b);
        // Subnet ownership: provider numbers transit links; one random peer
        // numbers private peerings; IXP links are numbered in gen_ixps.
        let (ra, rb, subnet_owner) = match kind {
            // Convention: link.a = customer, link.b = provider.
            LinkKind::Transit => (ra, rb, Some(b)),
            LinkKind::PrivatePeering | LinkKind::Internal => {
                let owner = if self.rng.random_bool(0.5) { a } else { b };
                (ra, rb, Some(owner))
            }
            LinkKind::IxpPeering(_) => (ra, rb, None),
        };
        self.add_link(ra, rb, kind, subnet_owner)
    }

    fn pick_interconnect_pops(&mut self, a: usize, b: usize) -> (PopId, PopId) {
        let pops_a = self.ases[a].pops.clone();
        let pops_b = self.ases[b].pops.clone();
        // Shared cities first, skipping city pairs already used by an
        // existing link between these ASes when possible (parallel links
        // should be in *different* cities).
        let used: Vec<(usize, usize)> = self
            .interconnects_key(a, b)
            .iter()
            .map(|&l| {
                let link = &self.links[l.index()];
                (
                    self.pops[self.routers[link.a.index()].pop.index()].city,
                    self.pops[self.routers[link.b.index()].pop.index()].city,
                )
            })
            .collect();
        let mut shared: Vec<(PopId, PopId)> = Vec::new();
        for &pa in &pops_a {
            for &pb in &pops_b {
                if self.pops[pa.index()].city == self.pops[pb.index()].city {
                    shared.push((pa, pb));
                }
            }
        }
        shared.shuffle(&mut self.rng);
        if let Some(&(pa, pb)) = shared.iter().find(|(pa, pb)| {
            !used.contains(&(self.pops[pa.index()].city, self.pops[pb.index()].city))
        }) {
            return (pa, pb);
        }
        if let Some(&pair) = shared.first() {
            return pair;
        }
        // No shared city: closest PoP pair.
        let mut best = (pops_a[0], pops_b[0]);
        let mut best_d = f64::INFINITY;
        for &pa in &pops_a {
            for &pb in &pops_b {
                let d = city_distance_km(
                    self.pops[pa.index()].city,
                    self.pops[pb.index()].city,
                );
                if d < best_d {
                    best_d = d;
                    best = (pa, pb);
                }
            }
        }
        best
    }

    fn interconnects_key(&self, a: usize, b: usize) -> Vec<LinkId> {
        self.interconnects
            .get(&(a.min(b), a.max(b)))
            .cloned()
            .unwrap_or_default()
    }

    /// Creates a link plus its two interfaces and addressing.
    fn add_link(
        &mut self,
        ra: RouterId,
        rb: RouterId,
        kind: LinkKind,
        subnet_owner: Option<usize>,
    ) -> LinkId {
        let link_id = LinkId::from(self.links.len());
        let as_a = self.routers[ra.index()].as_idx;
        let as_b = self.routers[rb.index()].as_idx;
        let city_a = self.pops[self.routers[ra.index()].pop.index()].city;
        let city_b = self.pops[self.routers[rb.index()].pop.index()].city;
        let delay_ms = link_delay_ms(city_a, city_b);
        let p = &self.params;

        // Capacity by link class: core backbones are fattest, access and
        // public fabric ports thinner — the §8 available-bandwidth substrate.
        let capacity_mbps = match kind {
            LinkKind::Internal => [40_000.0, 100_000.0][self.rng.random_range(0..2)],
            LinkKind::Transit => [10_000.0, 40_000.0, 100_000.0][self.rng.random_range(0..3)],
            LinkKind::PrivatePeering => [10_000.0, 40_000.0][self.rng.random_range(0..2)],
            LinkKind::IxpPeering(_) => [10_000.0, 100_000.0][self.rng.random_range(0..2)],
        };
        let announced_v4 = !self.rng.random_bool(p.unannounced_link_prob);
        let announced_v6 = !self.rng.random_bool(p.unannounced_link_prob_v6);
        let both_dual = self.ases[as_a].dual_stack && self.ases[as_b].dual_stack;
        let v6_enabled = both_dual
            && (kind == LinkKind::Internal || self.rng.random_bool(p.v6_link_fraction));

        // Allocate the subnet from the owner's infrastructure space, or from
        // the unannounced pool.
        let owner_for_addr = subnet_owner.unwrap_or(as_a);
        let (v4a, v4b, v6a, v6b, subnet_owner_final) = if announced_v4 {
            let (a4, b4) = self.alloc_infra_v4(owner_for_addr);
            let (a6, b6) = self.alloc_infra_v6(owner_for_addr);
            (a4, b4, a6, b6, subnet_owner)
        } else {
            let (a4, b4, a6, b6) = self.alloc_unannounced();
            (a4, b4, a6, b6, None)
        };

        let iface_a = IfaceId::from(self.ifaces.len());
        self.ifaces.push(Iface { router: ra, link: link_id, v4: v4a, v6: v6a });
        let iface_b = IfaceId::from(self.ifaces.len());
        self.ifaces.push(Iface { router: rb, link: link_id, v4: v4b, v6: v6b });

        self.links.push(Link {
            a: ra,
            b: rb,
            kind,
            iface_a,
            iface_b,
            subnet_owner: subnet_owner_final,
            announced_v4,
            announced_v6: announced_v6 && announced_v4,
            v6_enabled,
            delay_ms,
            capacity_mbps,
        });
        self.router_links[ra.index()].push(link_id);
        self.router_links[rb.index()].push(link_id);
        if kind.is_interconnect() {
            let key = (as_a.min(as_b), as_a.max(as_b));
            self.interconnects.entry(key).or_default().push(link_id);
        }
        link_id
    }

    /// Two host addresses in a fresh /30 from the AS's infrastructure half
    /// (the upper /17 of its /16).
    fn alloc_infra_v4(&mut self, as_idx: usize) -> (Ipv4Addr, Ipv4Addr) {
        let n = self.infra_counter[as_idx];
        self.infra_counter[as_idx] = n + 1;
        let infra = self.ases[as_idx].v4_prefix.subnet(17, 1); // x.x.128.0/17
        let subnet = infra.subnet(30, n % (1 << 13));
        (subnet.host(1), subnet.host(2))
    }

    /// Two host addresses in a fresh /126 from the AS's infrastructure /40.
    fn alloc_infra_v6(&mut self, as_idx: usize) -> (Ipv6Addr, Ipv6Addr) {
        let n = u128::from(self.infra_counter[as_idx]); // already bumped by v4 alloc
        let infra = self.ases[as_idx].v6_prefix.subnet(40, 1);
        let subnet = infra.subnet(126, n % (1 << 20));
        (subnet.host(1), subnet.host(2))
    }

    /// Addresses from pool space that is never announced in BGP
    /// (100.64.0.0/10 for v4, fd00::/8 for v6).
    fn alloc_unannounced(&mut self) -> (Ipv4Addr, Ipv4Addr, Ipv6Addr, Ipv6Addr) {
        let n = self.unannounced_counter;
        self.unannounced_counter = n + 1;
        let v4pool = Ipv4Net::new(Ipv4Addr::new(100, 64, 0, 0), 10);
        let s4 = v4pool.subnet(30, n % (1 << 20));
        let v6pool = Ipv6Net::new("fd00::".parse().unwrap(), 8);
        let s6 = v6pool.subnet(126, u128::from(n));
        (s4.host(1), s4.host(2), s6.host(1), s6.host(2))
    }

    // ---- step 3b: IXPs --------------------------------------------------

    fn gen_ixps(&mut self) {
        // IXPs go to the cities with the most PoPs.
        let mut pop_count: HashMap<usize, usize> = HashMap::new();
        for p in &self.pops {
            *pop_count.entry(p.city).or_default() += 1;
        }
        let mut cities: Vec<(usize, usize)> = pop_count.into_iter().collect();
        cities.sort_by_key(|&(city, n)| (std::cmp::Reverse(n), city));
        cities.truncate(self.params.n_ixps);

        for (ixp_i, &(city, _)) in cities.iter().enumerate() {
            // The fabric AS announcing the exchange prefix.
            let fabric_as = self.ases.len();
            let (v4, v6) = alloc_as_prefixes(fabric_as);
            self.push_as(AsNode {
                asn: Asn::new(60_000 + ixp_i as u32),
                tier: Tier::Stub,
                kind: AsKind::IxpFabric,
                continent: Some(CITIES[city].continent),
                pops: Vec::new(),
                v4_prefix: v4,
                v6_prefix: v6,
                dual_stack: true,
                mpls: false,
            });
            let members: Vec<usize> = self
                .pops
                .iter()
                .filter(|p| p.city == city)
                .map(|p| p.as_idx)
                .collect();
            let ixp_id = s2s_types::IxpId::from(self.ixps.len());
            self.ixps.push(Ixp { city, fabric_as, members: members.clone() });

            // Peering over the fabric: member pairs without an existing
            // relationship may peer publicly; pairs that already peer
            // privately are left alone.
            for (i, &a) in members.iter().enumerate() {
                for &b in members.iter().skip(i + 1) {
                    if a == b || self.as_adj[a].iter().any(|(n, _)| *n == b) {
                        continue;
                    }
                    // Don't peer two tier-1s here (clique already done), and
                    // keep stub-stub public peering plausible but sparse.
                    if !self.rng.random_bool(self.params.ixp_public_peering_prob) {
                        continue;
                    }
                    self.add_relationship(a, b, AsRel::Peer);
                    let pop_a = self.pop_of_in_city(a, city);
                    let pop_b = self.pop_of_in_city(b, city);
                    let ra = self.add_border_router(pop_a);
                    let rb = self.add_border_router(pop_b);
                    let link =
                        self.add_link(ra, rb, LinkKind::IxpPeering(ixp_id), Some(fabric_as));
                    // Re-number the link from the fabric AS's space (add_link
                    // used it already through subnet_owner, so nothing to do;
                    // the assert documents the invariant).
                    debug_assert_eq!(
                        self.links[link.index()].subnet_owner.is_some(),
                        self.links[link.index()].announced_v4
                    );
                }
            }
        }
    }

    fn pop_of_in_city(&self, as_idx: usize, city: usize) -> PopId {
        *self.ases[as_idx]
            .pops
            .iter()
            .find(|&&p| self.pops[p.index()].city == city)
            .expect("member AS must have a PoP in the IXP city")
    }

    // ---- step 4: internal links -----------------------------------------

    fn gen_internal_links(&mut self) {
        for i in 0..self.ases.len() {
            let pops = self.ases[i].pops.clone();
            if pops.len() < 2 {
                continue;
            }
            // Hub-and-spoke from the first PoP guarantees connectivity...
            let hub = pops[0];
            for &p in &pops[1..] {
                let ra = self.pops[hub.index()].core_router;
                let rb = self.pops[p.index()].core_router;
                self.add_link(ra, rb, LinkKind::Internal, Some(i));
            }
            // ...and every PoP additionally links to its two geographically
            // nearest siblings — real backbones are meshy enough that the
            // shortest internal path rarely detours far off the great
            // circle (keeps Fig. 10b inflation in the paper's ~3x range).
            for (pi, &p) in pops.iter().enumerate() {
                let city_p = self.pops[p.index()].city;
                let mut others: Vec<PopId> = pops
                    .iter()
                    .enumerate()
                    .filter(|&(qi, _)| qi != pi)
                    .map(|(_, &q)| q)
                    .collect();
                others.sort_by(|&qa, &qb| {
                    let da = city_distance_km(city_p, self.pops[qa.index()].city);
                    let db = city_distance_km(city_p, self.pops[qb.index()].city);
                    da.partial_cmp(&db).unwrap()
                });
                for &q in others.iter().take(2) {
                    let ra = self.pops[p.index()].core_router;
                    let rb = self.pops[q.index()].core_router;
                    let exists = self.router_links[ra.index()].iter().any(|&l| {
                        let link = &self.links[l.index()];
                        link.kind == LinkKind::Internal
                            && (link.a == rb || link.b == rb)
                    });
                    if !exists {
                        self.add_link(ra, rb, LinkKind::Internal, Some(i));
                    }
                }
            }
        }
    }

    // ---- step 5: clusters -------------------------------------------------

    fn gen_clusters(&mut self) {
        // Country mix per the paper: 39% US; AU/DE/IN/JP/CA together 19%;
        // the rest spread worldwide.
        let n = self.params.n_clusters;
        let n_us = (n as f64 * 0.39).round() as usize;
        let n_top5 = (n as f64 * 0.19).round() as usize;
        let top5 = ["AU", "DE", "IN", "JP", "CA"];

        // Candidate PoPs: prefer stub/eyeball/content host ASes, exclude
        // IXP fabric ASes, require dual-stack (the mesh is dual-stack).
        let candidates: Vec<PopId> = (0..self.pops.len())
            .map(PopId::from)
            .filter(|p| {
                let a = &self.ases[self.pops[p.index()].as_idx];
                a.kind != AsKind::IxpFabric && a.dual_stack
            })
            .collect();
        let by_country = |cc: &str, cands: &[PopId], pops: &[Pop]| -> Vec<PopId> {
            cands
                .iter()
                .copied()
                .filter(|p| CITIES[pops[p.index()].city].country == cc)
                .collect()
        };

        let mut picks: Vec<PopId> = Vec::with_capacity(n);
        let mut us = by_country("US", &candidates, &self.pops);
        us.shuffle(&mut self.rng);
        for i in 0..n_us {
            picks.push(us[i % us.len().max(1)]);
        }
        let mut t5: Vec<PopId> = Vec::new();
        for cc in top5 {
            t5.extend(by_country(cc, &candidates, &self.pops));
        }
        t5.shuffle(&mut self.rng);
        for i in 0..n_top5 {
            if t5.is_empty() {
                break;
            }
            picks.push(t5[i % t5.len()]);
        }
        let mut rest: Vec<PopId> = candidates
            .iter()
            .copied()
            .filter(|p| {
                let cc = CITIES[self.pops[p.index()].city].country;
                cc != "US" && !top5.contains(&cc)
            })
            .collect();
        rest.shuffle(&mut self.rng);
        let mut i = 0;
        while picks.len() < n && !rest.is_empty() {
            picks.push(rest[i % rest.len()]);
            i += 1;
        }

        for pop in picks {
            let as_idx = self.pops[pop.index()].as_idx;
            let city = self.pops[pop.index()].city;
            // Dedicated cluster attachment router, linked to the PoP core.
            let router = self.add_router(as_idx, pop);
            // Cluster routers always respond (they are CDN-managed).
            let r = self.routers.last_mut().unwrap();
            r.responsive_v4 = true;
            r.responsive_v6 = true;
            let core = self.pops[pop.index()].core_router;
            self.add_link(router, core, LinkKind::Internal, Some(as_idx));
            // Server addresses from the host AS's server half.
            let sc = self.server_counter[as_idx];
            self.server_counter[as_idx] = sc + 1;
            let v4 = self.ases[as_idx].v4_prefix.subnet(17, 0).host(sc + 10);
            let v6 = self.ases[as_idx].v6_prefix.subnet(40, 0).host(u128::from(sc) + 10);
            self.clusters.push(Cluster { city, host_as: as_idx, router, v4, v6 });
        }
    }

    // ---- step 6: announcements ---------------------------------------------

    fn gen_announcements(&mut self) -> Vec<(s2s_types::IpNet, Asn)> {
        let mut out = Vec::with_capacity(self.ases.len() * 2);
        for a in &self.ases {
            out.push((s2s_types::IpNet::V4(a.v4_prefix), a.asn));
            if a.dual_stack {
                out.push((s2s_types::IpNet::V6(a.v6_prefix), a.asn));
            }
        }
        out
    }
}

/// Address allocations: AS `i` gets v4 `(1 + i/256).(i%256).0.0/16` and
/// v6 `2600:i::/32`.
fn alloc_as_prefixes(i: usize) -> (Ipv4Net, Ipv6Net) {
    assert!(i < 60_000, "AS index {i} exhausts the synthetic v4 pool");
    let base = ((1 + i / 256) as u32) << 24 | ((i % 256) as u32) << 16;
    let v4 = Ipv4Net::new(Ipv4Addr::from(base), 16);
    let v6base: u128 = 0x2600u128 << 112 | (i as u128) << 96;
    let v6 = Ipv6Net::new(Ipv6Addr::from(v6base), 32);
    (v4, v6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_types::Protocol;
    use std::collections::HashSet;

    fn tiny() -> Topology {
        build_topology(&TopologyParams::tiny(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.ases.len(), b.ases.len());
        assert_eq!(a.links.len(), b.links.len());
        assert_eq!(a.clusters.len(), b.clusters.len());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!(la.a, lb.a);
            assert_eq!(la.b, lb.b);
            assert_eq!(la.kind, lb.kind);
        }
        for (fa, fb) in a.ifaces.iter().zip(&b.ifaces) {
            assert_eq!(fa.v4, fb.v4);
            assert_eq!(fa.v6, fb.v6);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_topology(&TopologyParams::tiny(1));
        let b = build_topology(&TopologyParams::tiny(2));
        // Same sizes by construction parameters, but different wiring.
        let wiring_a: Vec<(RouterId, RouterId)> =
            a.links.iter().map(|l| (l.a, l.b)).collect();
        let wiring_b: Vec<(RouterId, RouterId)> =
            b.links.iter().map(|l| (l.a, l.b)).collect();
        assert_ne!(wiring_a, wiring_b);
    }

    #[test]
    fn as_counts_match_params() {
        let t = tiny();
        let p = TopologyParams::tiny(42);
        // IXP fabric ASes come on top of the configured counts.
        assert_eq!(t.ases.len(), p.n_ases() + t.ixps.len());
        assert!(t.ixps.len() <= p.n_ixps);
        assert_eq!(t.clusters.len(), p.n_clusters);
    }

    #[test]
    fn every_as_has_pops_except_fabric() {
        let t = tiny();
        for a in &t.ases {
            if a.kind == AsKind::IxpFabric {
                assert!(a.pops.is_empty());
            } else {
                assert!(!a.pops.is_empty(), "{} has no PoPs", a.asn);
            }
        }
    }

    #[test]
    fn relationships_are_symmetric_and_valley_consistent() {
        let t = tiny();
        for (i, adj) in t.as_adj.iter().enumerate() {
            for &(j, rel) in adj {
                let back = t.rel(j, i).expect("symmetric adjacency");
                assert_eq!(back, rel.inverse(), "rel({i},{j}) inconsistent");
            }
        }
    }

    #[test]
    fn tier1s_form_a_peering_clique() {
        let t = tiny();
        let n1 = t.params.n_tier1;
        for a in 0..n1 {
            for b in (a + 1)..n1 {
                assert_eq!(t.rel(a, b), Some(AsRel::Peer), "tier1 {a}-{b}");
            }
        }
    }

    #[test]
    fn non_tier1s_have_a_provider_path_up() {
        let t = tiny();
        for (i, a) in t.ases.iter().enumerate() {
            if a.tier == Tier::Tier1 || a.kind == AsKind::IxpFabric {
                continue;
            }
            let has_provider =
                t.as_adj[i].iter().any(|&(_, rel)| rel == AsRel::Provider);
            assert!(has_provider, "{} ({:?}) has no provider", a.asn, a.tier);
        }
    }

    #[test]
    fn transit_links_are_numbered_by_provider() {
        let t = tiny();
        let mut checked = 0;
        for l in &t.links {
            if l.kind == LinkKind::Transit && l.announced_v4 {
                let provider_as = t.routers[l.b.index()].as_idx;
                assert_eq!(l.subnet_owner, Some(provider_as));
                // The customer-side rel toward provider is Provider.
                let customer_as = t.routers[l.a.index()].as_idx;
                assert_eq!(t.rel(customer_as, provider_as), Some(AsRel::Provider));
                checked += 1;
            }
        }
        assert!(checked > 10, "only {checked} transit links checked");
    }

    #[test]
    fn iface_addresses_are_unique() {
        let t = tiny();
        let mut v4 = HashSet::new();
        let mut v6 = HashSet::new();
        for f in &t.ifaces {
            assert!(v4.insert(f.v4), "duplicate v4 {}", f.v4);
            assert!(v6.insert(f.v6), "duplicate v6 {}", f.v6);
        }
        for c in &t.clusters {
            assert!(v4.insert(c.v4), "cluster v4 collides: {}", c.v4);
            assert!(v6.insert(c.v6), "cluster v6 collides: {}", c.v6);
        }
    }

    #[test]
    fn announced_link_subnets_map_to_owner() {
        let t = tiny();
        for l in &t.links {
            if let Some(owner) = l.subnet_owner {
                if l.announced_v4 {
                    let fa = &t.ifaces[l.iface_a.index()];
                    assert!(
                        t.ases[owner].v4_prefix.contains(fa.v4),
                        "iface {} not in owner {} prefix",
                        fa.v4,
                        t.ases[owner].asn
                    );
                }
            } else if !l.announced_v4 {
                let fa = &t.ifaces[l.iface_a.index()];
                // Unannounced pool: 100.64/10.
                assert_eq!(fa.v4.octets()[0], 100);
            }
        }
    }

    #[test]
    fn clusters_are_dual_stack_and_us_heavy() {
        let t = tiny();
        let us = t
            .clusters
            .iter()
            .filter(|c| CITIES[c.city].country == "US")
            .count();
        let frac = us as f64 / t.clusters.len() as f64;
        assert!((0.25..0.55).contains(&frac), "US fraction = {frac}");
        for c in &t.clusters {
            assert!(t.ases[c.host_as].dual_stack);
        }
    }

    #[test]
    fn cluster_routers_are_connected_and_responsive() {
        let t = tiny();
        for c in &t.clusters {
            let r = &t.routers[c.router.index()];
            assert!(r.responsive_v4 && r.responsive_v6);
            assert!(!t.router_links[c.router.index()].is_empty());
        }
    }

    #[test]
    fn internal_links_connect_same_as() {
        let t = tiny();
        for l in &t.links {
            let as_a = t.routers[l.a.index()].as_idx;
            let as_b = t.routers[l.b.index()].as_idx;
            if l.kind == LinkKind::Internal {
                assert_eq!(as_a, as_b);
            } else {
                assert_ne!(as_a, as_b);
            }
        }
    }

    #[test]
    fn multi_pop_ases_have_connected_backbones() {
        let t = tiny();
        for (i, a) in t.ases.iter().enumerate() {
            if a.pops.len() < 2 {
                continue;
            }
            // BFS over internal links from the first PoP's core router.
            let mut seen = HashSet::new();
            let start = t.pops[a.pops[0].index()].core_router;
            let mut stack = vec![start];
            while let Some(r) = stack.pop() {
                if !seen.insert(r) {
                    continue;
                }
                for &l in &t.router_links[r.index()] {
                    let link = &t.links[l.index()];
                    if link.kind == LinkKind::Internal {
                        stack.push(link.other_end(r));
                    }
                }
            }
            for &p in &a.pops {
                assert!(
                    seen.contains(&t.pops[p.index()].core_router),
                    "AS {i} backbone disconnected"
                );
            }
        }
    }

    #[test]
    fn link_delays_reflect_geography() {
        let t = tiny();
        for l in &t.links {
            assert!(l.delay_ms >= 0.1);
            let ca = t.router_city(l.a);
            let cb = t.router_city(l.b);
            if ca.name == cb.name {
                assert!(l.delay_ms <= 0.2, "same-city link delay {}", l.delay_ms);
            }
        }
        // At least one transcontinental link should be slow.
        let max = t.links.iter().map(|l| l.delay_ms).fold(0.0, f64::max);
        assert!(max > 20.0, "max link delay only {max} ms");
    }

    #[test]
    fn census_has_all_kinds() {
        // IXP public peering is probabilistic; raise the odds so the tiny
        // graph reliably exhibits every link kind.
        let t = build_topology(&TopologyParams {
            ixp_public_peering_prob: 0.7,
            ..TopologyParams::tiny(42)
        });
        let (internal, transit, private, ixp) = t.link_census();
        assert!(internal > 0);
        assert!(transit > 0);
        assert!(private > 0);
        assert!(ixp > 0, "no IXP links generated");
    }

    #[test]
    fn some_links_are_v4_only_and_some_unannounced() {
        let t = build_topology(&TopologyParams {
            // Crank probabilities so the tiny graph exhibits them.
            unannounced_link_prob: 0.05,
            unannounced_link_prob_v6: 0.05,
            v6_link_fraction: 0.8,
            ..TopologyParams::tiny(7)
        });
        assert!(t.links.iter().any(|l| !l.v6_enabled && l.kind.is_interconnect()));
        assert!(t.links.iter().any(|l| !l.announced_v4));
    }

    #[test]
    fn addr_index_round_trips() {
        let t = tiny();
        let idx = t.addr_index();
        for (i, f) in t.ifaces.iter().enumerate() {
            assert_eq!(idx[&std::net::IpAddr::V4(f.v4)].index(), i);
            assert_eq!(idx[&std::net::IpAddr::V6(f.v6)].index(), i);
        }
    }

    #[test]
    fn protocols_const_sane() {
        // Guard against accidental reorder: analysis code assumes V4 first.
        assert_eq!(Protocol::BOTH[0], Protocol::V4);
    }

    #[test]
    fn mpls_ases_exist_at_default_probability() {
        let t = build_topology(&TopologyParams {
            mpls_as_prob: 0.5,
            ..TopologyParams::tiny(9)
        });
        assert!(t.ases.iter().any(|a| a.mpls));
    }

    #[test]
    fn ixps_have_fabric_as_and_members() {
        let t = tiny();
        for ixp in &t.ixps {
            assert_eq!(t.ases[ixp.fabric_as].kind, AsKind::IxpFabric);
            assert!(ixp.members.len() >= 2 || ixp.members.len() == t.ixps.len().min(1));
        }
    }
}
