//! Seeded Internet-core topology generator.
//!
//! The paper measures the real Internet core from a CDN's vantage points.
//! This crate builds the simulated equivalent: a tiered AS-level graph with
//! Gao-style business relationships, router-level PoPs placed in real-world
//! cities, inter-AS interconnects (transit, private peering, and IXP public
//! fabric), dual-stack addressing with BGP announcements, and the CDN
//! cluster deployment that serves as the measurement platform.
//!
//! The generator is fully deterministic: the same [`TopologyParams`]
//! (including seed) always produces an identical [`Topology`].
//!
//! What downstream crates consume:
//!
//! * `s2s-bgp` builds its longest-prefix-match trie from
//!   [`Topology::announcements`],
//! * `s2s-routing` computes valley-free paths over [`Topology::as_adj`] and
//!   expands them to router paths over the PoP/link structure,
//! * `s2s-netsim` derives per-link propagation delays from PoP coordinates
//!   and picks congested links by their [`LinkKind`],
//! * `s2s-core` validates its router-ownership inferences against the
//!   ground-truth operator of every interface.

pub mod build;
pub mod model;
pub mod params;

pub use build::build_topology;
pub use model::{
    AsKind, AsNode, Cluster, Iface, Ixp, Link, LinkKind, Pop, Router, Tier, Topology,
};
pub use params::TopologyParams;
