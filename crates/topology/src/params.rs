//! Generator parameters.

use serde::{Deserialize, Serialize};

/// Parameters controlling topology generation. All sizes are approximate
/// targets; the generator derives exact counts deterministically from them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyParams {
    /// Seed for all random choices.
    pub seed: u64,
    /// Number of tier-1 (global transit-free) ASes. They form a full peering
    /// clique and have PoPs on every continent.
    pub n_tier1: usize,
    /// Number of tier-2 (regional transit) ASes, each scoped to one
    /// continent with 2-3 tier-1/tier-2 providers and regional peers.
    pub n_tier2: usize,
    /// Number of stub ASes (eyeball/content/hosting networks) with 1-3 PoPs.
    pub n_stub: usize,
    /// Number of Internet exchange points, placed in the largest cities.
    pub n_ixps: usize,
    /// Number of CDN server clusters to deploy (the measurement mesh).
    pub n_clusters: usize,
    /// Fraction of ASes that are dual-stack (the CDN's host ASes always
    /// are — the paper measures between dual-stack servers).
    pub v6_as_fraction: f64,
    /// Probability that an interconnect between two dual-stack ASes carries
    /// IPv6 (v4-only links make v6 paths diverge from v4, feeding Fig. 10a).
    pub v6_link_fraction: f64,
    /// Probability that a router never answers TTL-exceeded (unresponsive
    /// hops; drives the "missing IP-level data" row of Table 1).
    pub unresponsive_router_prob: f64,
    /// Additional unresponsiveness for IPv6 (the paper sees more missing
    /// hops on v6: 32.65% vs 28.12%).
    pub unresponsive_router_prob_v6: f64,
    /// Probability that an interconnect link's subnet is NOT announced in
    /// BGP (drives the "missing AS-level data" row of Table 1).
    pub unannounced_link_prob: f64,
    /// Same for IPv6 (paper: 3.32% vs 1.58% of traceroutes affected).
    pub unannounced_link_prob_v6: f64,
    /// Probability that a transit AS runs MPLS with TTL-propagation disabled
    /// (its internal hops are invisible to traceroute).
    pub mpls_as_prob: f64,
    /// Probability that a pair of ASes colocated at an IXP peers over the
    /// public fabric rather than a private cross-connect.
    pub ixp_public_peering_prob: f64,
}

impl Default for TopologyParams {
    fn default() -> Self {
        TopologyParams {
            seed: 20151201,
            n_tier1: 8,
            n_tier2: 44,
            n_stub: 110,
            n_ixps: 12,
            n_clusters: 120,
            v6_as_fraction: 0.85,
            v6_link_fraction: 0.93,
            // Persistently dark routers are rare; most missing hops come
            // from the ICMP rate-limiting model in s2s-netsim.
            unresponsive_router_prob: 0.004,
            unresponsive_router_prob_v6: 0.005,
            unannounced_link_prob: 0.0035,
            unannounced_link_prob_v6: 0.008,
            mpls_as_prob: 0.12,
            ixp_public_peering_prob: 0.3,
        }
    }
}

impl TopologyParams {
    /// A small topology for unit tests: fast to generate, still has every
    /// structural feature (tiers, IXPs, v4-only links, MPLS, clusters).
    pub fn tiny(seed: u64) -> Self {
        TopologyParams {
            seed,
            n_tier1: 4,
            n_tier2: 12,
            n_stub: 24,
            n_ixps: 4,
            n_clusters: 16,
            ..TopologyParams::default()
        }
    }

    /// The default experiment scale, overridable through the `S2S_SEED` and
    /// `S2S_CLUSTERS` environment knobs (see DESIGN.md §8). Malformed values
    /// warn once and fall back to the defaults, like every other `S2S_*`
    /// knob (see `s2s_types::env`).
    pub fn from_env() -> Self {
        let mut p = TopologyParams::default();
        p.seed = s2s_types::env::var_u64("S2S_SEED", p.seed);
        p.n_clusters = s2s_types::env::var_usize_at_least("S2S_CLUSTERS", p.n_clusters, 2);
        p
    }

    /// Total AS count.
    pub fn n_ases(&self) -> usize {
        self.n_tier1 + self.n_tier2 + self.n_stub
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = TopologyParams::default();
        assert!(p.n_tier1 >= 2);
        assert!(p.n_ases() > p.n_clusters / 2);
        assert!((0.0..=1.0).contains(&p.v6_as_fraction));
        assert!(p.unresponsive_router_prob_v6 >= p.unresponsive_router_prob);
        assert!(p.unannounced_link_prob_v6 >= p.unannounced_link_prob);
    }

    #[test]
    fn tiny_is_smaller() {
        let t = TopologyParams::tiny(1);
        assert!(t.n_ases() < TopologyParams::default().n_ases());
        assert_eq!(t.seed, 1);
    }
}
