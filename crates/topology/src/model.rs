//! The generated topology data model.
//!
//! Arena-style: ASes, PoPs, routers, links, interfaces, IXPs, and clusters
//! live in flat vectors indexed by the id types from `s2s-types`. The
//! generator in [`crate::build`] fills these in; everything here is plain
//! data plus lookup helpers.

use crate::params::TopologyParams;
use s2s_geo::{City, Continent, CITIES};
use s2s_types::{
    Asn, ClusterId, IfaceId, IpNet, Ipv4Net, Ipv6Net, IxpId, LinkId, PopId, RouterId,
};
use s2s_types::rel::AsRel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Hierarchy tier of an AS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Tier {
    /// Global, transit-free backbone (full peering clique among tier-1s).
    Tier1,
    /// Regional transit provider, scoped to one continent.
    Tier2,
    /// Stub: eyeball, content, or hosting network.
    Stub,
}

/// Business category of an AS (cosmetic except for IXP management ASes,
/// whose ASNs appear in inferred AS paths when crossing public fabric).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AsKind {
    /// Sells transit.
    Transit,
    /// Access/eyeball network.
    Eyeball,
    /// Content/hosting network.
    Content,
    /// The management AS of an IXP (announces the fabric prefix).
    IxpFabric,
}

/// One autonomous system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsNode {
    /// Public AS number.
    pub asn: Asn,
    /// Hierarchy tier.
    pub tier: Tier,
    /// Business category.
    pub kind: AsKind,
    /// Home continent; `None` for global (tier-1) networks.
    pub continent: Option<Continent>,
    /// PoPs operated by this AS.
    pub pops: Vec<PopId>,
    /// The AS's IPv4 allocation (a /16); servers in the lower half,
    /// infrastructure in the upper half.
    pub v4_prefix: Ipv4Net,
    /// The AS's IPv6 allocation (a /32).
    pub v6_prefix: Ipv6Net,
    /// Whether the AS deploys IPv6 at all.
    pub dual_stack: bool,
    /// Whether the AS runs MPLS with TTL propagation disabled (interior
    /// hops invisible to traceroute).
    pub mpls: bool,
}

/// A point of presence: one (AS, city) with a core router.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Pop {
    /// Owning AS (index into [`Topology::ases`]).
    pub as_idx: usize,
    /// City (index into [`s2s_geo::CITIES`]).
    pub city: usize,
    /// The PoP's core router.
    pub core_router: RouterId,
}

/// A router.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Router {
    /// Operating AS (ground truth for ownership inference validation).
    pub as_idx: usize,
    /// Home PoP.
    pub pop: PopId,
    /// Replies to TTL-exceeded over IPv4.
    pub responsive_v4: bool,
    /// Replies to TTL-exceeded over IPv6.
    pub responsive_v6: bool,
}

/// What kind of link this is — the classification the paper's §5.3
/// congestion census reports on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LinkKind {
    /// Intra-AS backbone link between two PoPs of the same AS.
    Internal,
    /// Transit (c2p) interconnect; by convention endpoint `a` is the
    /// customer-side router and `b` the provider-side router.
    Transit,
    /// Settlement-free private interconnect (cross-connect).
    PrivatePeering,
    /// Settlement-free peering over an IXP's public switching fabric.
    IxpPeering(IxpId),
}

impl LinkKind {
    /// True for any inter-AS link.
    pub fn is_interconnect(self) -> bool {
        !matches!(self, LinkKind::Internal)
    }
}

/// A point-to-point link (or an IXP fabric crossing modeled as one).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint (customer side for [`LinkKind::Transit`]).
    pub a: RouterId,
    /// Other endpoint (provider side for [`LinkKind::Transit`]).
    pub b: RouterId,
    /// Link classification.
    pub kind: LinkKind,
    /// `a`'s interface on this link.
    pub iface_a: IfaceId,
    /// `b`'s interface on this link.
    pub iface_b: IfaceId,
    /// Which AS's address space numbers the link subnet (for transit links
    /// the provider; for IXP links the fabric AS) — ground truth behind the
    /// paper's Fig. 8 ownership heuristics. `None` when the subnet comes
    /// from unannounced space.
    pub subnet_owner: Option<usize>,
    /// Whether the link's IPv4 subnet is announced in BGP.
    pub announced_v4: bool,
    /// Whether the link's IPv6 subnet is announced in BGP.
    pub announced_v6: bool,
    /// Whether IPv6 runs over this link.
    pub v6_enabled: bool,
    /// One-way propagation delay in milliseconds.
    pub delay_ms: f64,
    /// Link capacity in Mbit/s (backbones 40–100G, interconnects 10–100G).
    pub capacity_mbps: f64,
}

impl Link {
    /// The router at the far end from `r`.
    ///
    /// # Panics
    /// Panics if `r` is not an endpoint of this link.
    pub fn other_end(&self, r: RouterId) -> RouterId {
        if r == self.a {
            self.b
        } else if r == self.b {
            self.a
        } else {
            panic!("router {r} is not on this link");
        }
    }

    /// The interface belonging to router `r` on this link.
    ///
    /// # Panics
    /// Panics if `r` is not an endpoint of this link.
    pub fn iface_of(&self, r: RouterId) -> IfaceId {
        if r == self.a {
            self.iface_a
        } else if r == self.b {
            self.iface_b
        } else {
            panic!("router {r} is not on this link");
        }
    }
}

/// One addressable router interface.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Iface {
    /// Owning router.
    pub router: RouterId,
    /// The link this interface sits on.
    pub link: LinkId,
    /// IPv4 address.
    pub v4: Ipv4Addr,
    /// IPv6 address.
    pub v6: Ipv6Addr,
}

/// An Internet exchange point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ixp {
    /// City hosting the exchange.
    pub city: usize,
    /// The management AS announcing the fabric prefix.
    pub fabric_as: usize,
    /// Member ASes (indices) with a presence at the exchange.
    pub members: Vec<usize>,
}

/// One CDN server cluster — a measurement vantage point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Cluster {
    /// City of the hosting facility.
    pub city: usize,
    /// The AS hosting the cluster.
    pub host_as: usize,
    /// The dedicated attachment router inside the host AS's PoP.
    pub router: RouterId,
    /// The measurement server's IPv4 address.
    pub v4: Ipv4Addr,
    /// The measurement server's IPv6 address.
    pub v6: Ipv6Addr,
}

/// The full generated topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// Parameters the topology was generated from.
    pub params: TopologyParams,
    /// All ASes.
    pub ases: Vec<AsNode>,
    /// AS-level adjacency: `as_adj[i]` lists `(neighbor_idx, rel)` where
    /// `rel` is AS `i`'s relationship *toward* the neighbor.
    pub as_adj: Vec<Vec<(usize, AsRel)>>,
    /// All PoPs.
    pub pops: Vec<Pop>,
    /// All routers.
    pub routers: Vec<Router>,
    /// All links.
    pub links: Vec<Link>,
    /// All interfaces.
    pub ifaces: Vec<Iface>,
    /// All IXPs.
    pub ixps: Vec<Ixp>,
    /// All CDN clusters.
    pub clusters: Vec<Cluster>,
    /// BGP announcements: `(prefix, origin ASN)`.
    pub announcements: Vec<(IpNet, Asn)>,
    /// Per-router incident links.
    pub router_links: Vec<Vec<LinkId>>,
    /// Interconnect links between each unordered AS pair
    /// (key = `(min_idx, max_idx)`).
    pub interconnects: HashMap<(usize, usize), Vec<LinkId>>,
    /// ASN → AS index.
    pub asn_to_idx: HashMap<Asn, usize>,
}

impl Topology {
    /// The AS index for an ASN, if it exists.
    pub fn as_idx(&self, asn: Asn) -> Option<usize> {
        self.asn_to_idx.get(&asn).copied()
    }

    /// The ASN of an AS index.
    pub fn asn(&self, idx: usize) -> Asn {
        self.ases[idx].asn
    }

    /// The city of a router.
    pub fn router_city(&self, r: RouterId) -> &'static City {
        &CITIES[self.pops[self.routers[r.index()].pop.index()].city]
    }

    /// The city of a cluster.
    pub fn cluster_city(&self, c: ClusterId) -> &'static City {
        &CITIES[self.clusters[c.index()].city]
    }

    /// The relationship of AS `a` toward AS `b`, if adjacent.
    pub fn rel(&self, a: usize, b: usize) -> Option<AsRel> {
        self.as_adj[a].iter().find(|(n, _)| *n == b).map(|(_, r)| *r)
    }

    /// The interconnect links between two ASes (either order).
    pub fn interconnects_between(&self, a: usize, b: usize) -> &[LinkId] {
        let key = (a.min(b), a.max(b));
        self.interconnects.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The ground-truth operator AS of an interface (the AS operating its
    /// router) — what the paper's ownership heuristics try to recover.
    pub fn iface_operator(&self, i: IfaceId) -> usize {
        self.routers[self.ifaces[i.index()].router.index()].as_idx
    }

    /// Looks up which interface owns an address. Linear scan; for bulk use,
    /// build an index with [`Topology::addr_index`].
    pub fn iface_by_addr(&self, addr: IpAddr) -> Option<IfaceId> {
        self.ifaces.iter().position(|f| match addr {
            IpAddr::V4(a) => f.v4 == a,
            IpAddr::V6(a) => f.v6 == a,
        })
        .map(IfaceId::from)
    }

    /// Builds a map from every interface address (both families) to its
    /// interface id.
    pub fn addr_index(&self) -> HashMap<IpAddr, IfaceId> {
        let mut m = HashMap::with_capacity(self.ifaces.len() * 2);
        for (i, f) in self.ifaces.iter().enumerate() {
            m.insert(IpAddr::V4(f.v4), IfaceId::from(i));
            m.insert(IpAddr::V6(f.v6), IfaceId::from(i));
        }
        m
    }

    /// The internal (intra-AS) links of one AS.
    pub fn internal_links_of(&self, as_idx: usize) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                l.kind == LinkKind::Internal
                    && self.routers[l.a.index()].as_idx == as_idx
            })
            .map(|(i, _)| LinkId::from(i))
            .collect()
    }

    /// Total count of links by kind, for reporting.
    pub fn link_census(&self) -> (usize, usize, usize, usize) {
        let mut internal = 0;
        let mut transit = 0;
        let mut private = 0;
        let mut ixp = 0;
        for l in &self.links {
            match l.kind {
                LinkKind::Internal => internal += 1,
                LinkKind::Transit => transit += 1,
                LinkKind::PrivatePeering => private += 1,
                LinkKind::IxpPeering(_) => ixp += 1,
            }
        }
        (internal, transit, private, ixp)
    }
}
