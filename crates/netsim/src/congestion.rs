//! The diurnal congestion model.
//!
//! The paper defines *consistent congestion* as an RTT oscillation with a
//! daily cycle, a few hours per instance (§5.1). It locates such congestion
//! both inside networks and on interconnects — more often on private
//! peering links when weighted by crossing paths — with a typical overhead
//! of 20–30 ms, ~60 ms on transcontinental links, and up to ~90 ms on some
//! Asia paths (Fig. 9, §5.4).
//!
//! We reproduce the mechanism: a seeded subset of links carries a busy-hour
//! queueing bump, centered in the link's local evening (solar time at the
//! link midpoint), active during a long episode window, with amplitude
//! scaled by the link's geographic class — mirroring the paper's
//! explanation that buffer sizing follows the rule-of-thumb RTT (§5.4).

use crate::noise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use s2s_topology::{LinkKind, Topology};
use s2s_types::{LinkId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the congestion process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CongestionParams {
    /// Seed (independent of topology/dynamics seeds).
    pub seed: u64,
    /// Fraction of internal links that experience congestion episodes.
    pub internal_fraction: f64,
    /// Fraction of private-peering links with congestion. The paper finds
    /// the large majority of congested interconnects are private.
    pub private_peering_fraction: f64,
    /// Fraction of transit links with congestion.
    pub transit_fraction: f64,
    /// Fraction of IXP public-fabric links with congestion (small: IXP SLAs
    /// police port utilization, §5.3).
    pub ixp_fraction: f64,
    /// Mean amplitude for same-continent links, ms.
    pub base_amplitude_ms: f64,
    /// Amplitude multiplier for transcontinental links (~60 ms typical).
    pub transcontinental_factor: f64,
    /// Extra multiplier for Asia–Europe / intra-Asia long-haul (~90 ms).
    pub asia_europe_factor: f64,
    /// Median episode length in days (log-normal, sigma 1.0).
    pub median_episode_days: f64,
    /// End of the modeled horizon.
    pub horizon: SimTime,
}

impl Default for CongestionParams {
    fn default() -> Self {
        CongestionParams {
            seed: 0xC09E57ED,
            internal_fraction: 0.05,
            private_peering_fraction: 0.14,
            transit_fraction: 0.04,
            ixp_fraction: 0.02,
            base_amplitude_ms: 25.0,
            transcontinental_factor: 2.4,
            asia_europe_factor: 3.6,
            median_episode_days: 110.0,
            horizon: SimTime::from_days(485),
        }
    }
}

/// The congestion profile of one link.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Peak extra one-way delay at the busy hour, ms.
    pub amplitude_ms: f64,
    /// Busy-hour center in local solar hours (0–24).
    pub peak_local_hour: f64,
    /// Gaussian width of the busy period, hours.
    pub width_hours: f64,
    /// Episode start, minutes since T0.
    pub start_min: u32,
    /// Episode end, minutes since T0.
    pub end_min: u32,
    /// Longitude used for local-time conversion.
    pub lon_deg: f64,
    /// Congestion is directional: the queue builds on the interface
    /// *toward* this router. Packets crossing the other way see nothing.
    pub toward: u32,
    /// How strongly the queue affects IPv6 traffic, 0.0–1.0. IPv6 carries
    /// far less traffic, so busy-hour queues hit it much more weakly — the
    /// paper finds strong diurnal patterns on 2% of IPv4 pairs but only
    /// 0.6% of IPv6.
    pub v6_factor: f64,
}

impl LinkProfile {
    /// The extra one-way delay this profile contributes at `t`, in ms.
    pub fn delay_ms(&self, t: SimTime) -> f64 {
        let m = t.minutes();
        if m < self.start_min || m >= self.end_min {
            return 0.0;
        }
        let h = t.local_hour_of_day(self.lon_deg);
        // Wrap-around Gaussian bump centered on the busy hour.
        let mut d = (h - self.peak_local_hour).abs();
        if d > 12.0 {
            d = 24.0 - d;
        }
        let bump = (-0.5 * (d / self.width_hours).powi(2)).exp();
        // Day-to-day variation: the busy hour isn't equally busy every day.
        let day_scale = 0.8
            + 0.4 * noise::uniform(noise::key(&[self.start_min as u64, u64::from(t.day())]));
        self.amplitude_ms * bump * day_scale
    }
}

/// The set of congested links and their profiles.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CongestionModel {
    profiles: HashMap<u32, LinkProfile>,
}

impl CongestionModel {
    /// A model with no congestion anywhere.
    pub fn none() -> Self {
        CongestionModel::default()
    }

    /// A model with explicit profiles (tests).
    pub fn from_profiles(profiles: Vec<(LinkId, LinkProfile)>) -> Self {
        CongestionModel {
            profiles: profiles.into_iter().map(|(l, p)| (l.0, p)).collect(),
        }
    }

    /// Seeds congestion over a topology.
    pub fn generate(topo: &Topology, params: &CongestionParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut profiles = HashMap::new();
        // CDN-managed cluster access links never congest (the paper's
        // platform measures the core, and its own racks are provisioned).
        let cluster_routers: std::collections::HashSet<_> =
            topo.clusters.iter().map(|c| c.router).collect();
        for (li, link) in topo.links.iter().enumerate() {
            if cluster_routers.contains(&link.a) || cluster_routers.contains(&link.b) {
                continue;
            }
            let mut frac = match link.kind {
                LinkKind::Internal => params.internal_fraction,
                LinkKind::PrivatePeering => params.private_peering_fraction,
                LinkKind::Transit => params.transit_fraction,
                LinkKind::IxpPeering(_) => params.ixp_fraction,
            };
            // Blast-radius scaling: links of large (many-PoP) networks carry
            // many more server pairs, and in reality those are exactly the
            // links provisioned hardest. Scaling the congestion probability
            // by the inverse of the endpoint networks' footprints keeps the
            // per-pair congestion rate near the paper's ~2% without letting
            // one hot backbone link flag half the mesh.
            let pops_of = |r: s2s_types::RouterId| {
                topo.ases[topo.routers[r.index()].as_idx].pops.len()
            };
            let footprint = pops_of(link.a) + pops_of(link.b);
            frac *= (2.5 / footprint as f64).min(1.0);
            if !rng.random_bool(frac) {
                continue;
            }
            let city_a = topo.router_city(link.a);
            let city_b = topo.router_city(link.b);
            let transcontinental = city_a.continent != city_b.continent;
            let asia_involved = matches!(
                (city_a.continent, city_b.continent),
                (s2s_geo::Continent::Asia, _) | (_, s2s_geo::Continent::Asia)
            );
            let factor = if transcontinental && asia_involved && rng.random_bool(0.4) {
                params.asia_europe_factor
            } else if transcontinental {
                params.transcontinental_factor
            } else {
                1.0
            };
            let amplitude = (params.base_amplitude_ms * factor
                * (0.85 + 0.3 * rng.random::<f64>()))
            .max(12.0);
            // Busy hour: local evening, 19:00–23:00.
            let peak = 19.0 + 4.0 * rng.random::<f64>();
            let width = 2.0 + 2.0 * rng.random::<f64>();
            // Long-lived episode somewhere in the horizon.
            let horizon = params.horizon.minutes();
            let z = {
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let dur_days = params.median_episode_days * z.exp();
            let dur_min = (dur_days * 1440.0).clamp(3.0 * 1440.0, f64::from(horizon));
            let start = rng.random_range(0..horizon.saturating_sub(dur_min as u32).max(1));
            let lon = (city_a.lon + city_b.lon) / 2.0;
            let toward = if rng.random_bool(0.5) { link.a } else { link.b };
            // A quarter of queues are effectively v4-only; the rest hit v6
            // at a fraction of the v4 amplitude.
            let v6_factor = if rng.random_bool(0.25) {
                0.0
            } else {
                0.35 + 0.45 * rng.random::<f64>()
            };
            profiles.insert(
                li as u32,
                LinkProfile {
                    amplitude_ms: amplitude,
                    peak_local_hour: peak,
                    width_hours: width,
                    start_min: start,
                    end_min: (start + dur_min as u32).min(horizon),
                    lon_deg: lon,
                    toward: toward.0,
                    v6_factor,
                },
            );
        }
        CongestionModel { profiles }
    }

    /// Extra one-way delay for a packet crossing `link` *toward* router
    /// `to`, at `t`, in ms (0 when uncongested or crossing the clean
    /// direction).
    pub fn delay_ms_toward(
        &self,
        link: LinkId,
        to: s2s_types::RouterId,
        proto: s2s_types::Protocol,
        t: SimTime,
    ) -> f64 {
        match self.profiles.get(&link.0) {
            Some(p) if p.toward == to.0 => match proto {
                s2s_types::Protocol::V4 => p.delay_ms(t),
                s2s_types::Protocol::V6 => p.delay_ms(t) * p.v6_factor,
            },
            _ => 0.0,
        }
    }

    /// Direction-agnostic delay (the congested direction's value) — used by
    /// tests and calibration.
    pub fn delay_ms(&self, link: LinkId, t: SimTime) -> f64 {
        self.profiles.get(&link.0).map(|p| p.delay_ms(t)).unwrap_or(0.0)
    }

    /// Whether a link has a profile at all.
    pub fn is_congested_link(&self, link: LinkId) -> bool {
        self.profiles.contains_key(&link.0)
    }

    /// All congested links (ground truth for validating §5.2 localization).
    pub fn congested_links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self.profiles.keys().map(|&l| LinkId(l)).collect();
        v.sort_unstable();
        v
    }

    /// The profile of a link, if congested.
    pub fn profile(&self, link: LinkId) -> Option<&LinkProfile> {
        self.profiles.get(&link.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_topology::{build_topology, TopologyParams};
    use s2s_types::SimDuration;

    fn profile(amp: f64, peak: f64, lon: f64) -> LinkProfile {
        LinkProfile {
            amplitude_ms: amp,
            peak_local_hour: peak,
            width_hours: 3.0,
            start_min: 0,
            end_min: SimTime::from_days(100).minutes(),
            lon_deg: lon,
            toward: 0,
            v6_factor: 1.0,
        }
    }

    #[test]
    fn bump_peaks_at_busy_hour() {
        let p = profile(30.0, 20.0, 0.0); // Greenwich, peak 20:00 local=UTC
        let at_peak = p.delay_ms(SimTime::from_hours(20));
        let at_night = p.delay_ms(SimTime::from_hours(5));
        assert!(at_peak > 20.0, "peak delay {at_peak}");
        assert!(at_night < 2.0, "off-peak delay {at_night}");
    }

    #[test]
    fn bump_follows_local_time() {
        // Tokyo longitude: 20:00 local ≈ 10:41 UTC.
        let p = profile(30.0, 20.0, 139.7);
        let utc_for_local_20 = SimTime::from_minutes((10 * 60) + 41);
        let at_local_peak = p.delay_ms(utc_for_local_20);
        let at_utc_20 = p.delay_ms(SimTime::from_hours(20));
        assert!(at_local_peak > at_utc_20, "{at_local_peak} vs {at_utc_20}");
    }

    #[test]
    fn outside_episode_is_zero() {
        let mut p = profile(30.0, 20.0, 0.0);
        p.start_min = SimTime::from_days(10).minutes();
        p.end_min = SimTime::from_days(20).minutes();
        assert_eq!(p.delay_ms(SimTime::from_days(5) + SimDuration::from_hours(20)), 0.0);
        assert!(p.delay_ms(SimTime::from_days(15) + SimDuration::from_hours(20)) > 10.0);
        assert_eq!(p.delay_ms(SimTime::from_days(25) + SimDuration::from_hours(20)), 0.0);
    }

    #[test]
    fn daily_cycle_repeats() {
        let p = profile(25.0, 21.0, 0.0);
        for day in 10..14 {
            let t = SimTime::from_days(day) + SimDuration::from_hours(21);
            assert!(p.delay_ms(t) > 12.0, "day {day} has no bump");
            let tq = SimTime::from_days(day) + SimDuration::from_hours(9);
            assert!(p.delay_ms(tq) < 1.0, "day {day} quiet hour not quiet");
        }
    }

    #[test]
    fn generate_is_deterministic_and_selective() {
        let topo = build_topology(&TopologyParams::tiny(55));
        let params = CongestionParams::default();
        let a = CongestionModel::generate(&topo, &params);
        let b = CongestionModel::generate(&topo, &params);
        assert_eq!(a.congested_links(), b.congested_links());
        let frac = a.congested_links().len() as f64 / topo.links.len() as f64;
        assert!(frac < 0.25, "too many congested links: {frac}");
    }

    #[test]
    fn generate_hits_multiple_link_kinds() {
        let topo = build_topology(&TopologyParams::default());
        let m = CongestionModel::generate(
            &topo,
            &CongestionParams {
                internal_fraction: 0.2,
                private_peering_fraction: 0.4,
                ..CongestionParams::default()
            },
        );
        let kinds: std::collections::HashSet<_> = m
            .congested_links()
            .iter()
            .map(|&l| std::mem::discriminant(&topo.links[l.index()].kind))
            .collect();
        assert!(kinds.len() >= 2, "congestion hit only one link kind");
    }

    #[test]
    fn transcontinental_links_get_bigger_amplitudes() {
        let topo = build_topology(&TopologyParams::default());
        let m = CongestionModel::generate(
            &topo,
            &CongestionParams {
                internal_fraction: 0.3,
                private_peering_fraction: 0.5,
                transit_fraction: 0.3,
                ..CongestionParams::default()
            },
        );
        let mut same_cont = Vec::new();
        let mut cross_cont = Vec::new();
        for l in m.congested_links() {
            let link = &topo.links[l.index()];
            let (ca, cb) = (topo.router_city(link.a), topo.router_city(link.b));
            let amp = m.profile(l).unwrap().amplitude_ms;
            if ca.continent == cb.continent {
                same_cont.push(amp);
            } else {
                cross_cont.push(amp);
            }
        }
        assert!(!same_cont.is_empty() && !cross_cont.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&cross_cont) > mean(&same_cont) * 1.5,
            "cross {} vs same {}",
            mean(&cross_cont),
            mean(&same_cont)
        );
        // Same-continent amplitudes sit in the paper's 20-30 ms band.
        let m_same = mean(&same_cont);
        assert!((18.0..35.0).contains(&m_same), "same-continent mean {m_same}");
    }

    #[test]
    fn none_model_is_silent() {
        let m = CongestionModel::none();
        assert_eq!(m.delay_ms(LinkId::new(3), SimTime::from_hours(20)), 0.0);
        assert!(m.congested_links().is_empty());
    }
}
