//! Deterministic measurement noise.
//!
//! Every probe sees jitter; a few percent see heavy spikes (cross-traffic
//! bursts, router CPU hiccups). To keep the whole simulation replayable,
//! noise is not drawn from a stateful RNG but *keyed*: a hash of
//! (who, when, which probe) maps to the same noise values forever.

/// A 64-bit mix (splitmix64 finalizer) — the base of all keyed noise.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Combines key parts into one hash.
pub fn key(parts: &[u64]) -> u64 {
    let mut h = 0x2545F4914F6CDD1Du64;
    for &p in parts {
        h = mix(h ^ p);
    }
    h
}

/// Uniform in `[0, 1)` from a key.
pub fn uniform(k: u64) -> f64 {
    (mix(k) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal from a key (Box–Muller on two derived uniforms).
pub fn normal(k: u64) -> f64 {
    let u1 = uniform(k).max(1e-12);
    let u2 = uniform(mix(k ^ 0xABCD));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Exponential with the given mean, from a key.
pub fn exponential(k: u64, mean: f64) -> f64 {
    -mean * (1.0 - uniform(k)).ln()
}

/// Per-probe noise in milliseconds: log-normal jitter (median ~0.3 ms) plus
/// a `spike_prob` chance of an exponential spike with `spike_mean_ms`.
pub fn probe_noise_ms(k: u64, spike_prob: f64, spike_mean_ms: f64) -> f64 {
    let jitter = 0.3 * (0.8 * normal(mix(k ^ 0x11))).exp();
    let spike = if uniform(mix(k ^ 0x22)) < spike_prob {
        exponential(mix(k ^ 0x33), spike_mean_ms)
    } else {
        0.0
    };
    jitter + spike
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_key_same_noise() {
        let k = key(&[1, 2, 3]);
        assert_eq!(uniform(k), uniform(k));
        assert_eq!(normal(k), normal(k));
        assert_eq!(probe_noise_ms(k, 0.02, 30.0), probe_noise_ms(k, 0.02, 30.0));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(uniform(key(&[1])), uniform(key(&[2])));
        assert_ne!(key(&[1, 2]), key(&[2, 1]), "key order matters");
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|i| uniform(key(&[i]))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        let in_first_decile =
            (0..n).filter(|&i| uniform(key(&[i])) < 0.1).count() as f64 / n as f64;
        assert!((in_first_decile - 0.1).abs() < 0.02);
    }

    #[test]
    fn normal_has_right_moments() {
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|i| normal(key(&[7, i]))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn exponential_mean() {
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|i| exponential(key(&[9, i]), 30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn spikes_occur_at_configured_rate() {
        let n = 20_000u64;
        let spiky = (0..n)
            .filter(|&i| probe_noise_ms(key(&[3, i]), 0.02, 30.0) > 5.0)
            .count() as f64
            / n as f64;
        assert!((spiky - 0.02).abs() < 0.01, "spike rate = {spiky}");
        // With zero probability there are (almost) no spikes.
        let spiky0 = (0..n)
            .filter(|&i| probe_noise_ms(key(&[3, i]), 0.0, 30.0) > 5.0)
            .count();
        assert!(spiky0 < n as usize / 500);
    }

    proptest! {
        #[test]
        fn prop_uniform_in_range(k: u64) {
            let u = uniform(k);
            prop_assert!((0.0..1.0).contains(&u));
        }

        #[test]
        fn prop_noise_is_positive(k: u64) {
            prop_assert!(probe_noise_ms(k, 0.05, 30.0) > 0.0);
        }
    }
}
