//! The network façade: turning routed paths into probe observations.
//!
//! [`Network`] answers the two questions measurement tools ask:
//!
//! * *TTL-limited probe* — which router answers at TTL `k`, and with what
//!   RTT? (drives traceroute),
//! * *end-to-end echo* — what is the RTT to the destination server right
//!   now? (drives ping and the final traceroute hop).
//!
//! RTT composition mirrors reality:
//!
//! ```text
//! e2e RTT  = fwd propagation + fwd congestion        (src → dst path)
//!          + rev propagation + rev congestion        (dst → src path — may
//!                                                     differ: routing is
//!                                                     asymmetric)
//!          + server processing + keyed noise/spikes
//! hop RTT  = 2 × (prefix propagation + prefix congestion)
//!          + router ICMP generation + keyed noise
//! ```
//!
//! Hidden (MPLS) hops add delay but consume no TTL; unresponsive routers
//! consume TTL but never answer; probes are occasionally lost outright.

use crate::congestion::CongestionModel;
use crate::noise;
use s2s_routing::{RouteOracle, RouterPath};
use s2s_types::{ClusterId, Protocol, SimTime};
use std::net::IpAddr;
use std::sync::Arc;

/// Tunables of the measurement plane.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkParams {
    /// Probability that any single probe (or its reply) is lost.
    pub loss_prob: f64,
    /// Probability of a heavy RTT spike on a probe.
    pub spike_prob: f64,
    /// Mean of the exponential spike magnitude, ms.
    pub spike_mean_ms: f64,
    /// Destination server ICMP processing time, ms.
    pub server_processing_ms: f64,
    /// Router ICMP time-exceeded generation time, ms.
    pub router_processing_ms: f64,
    /// Extra loss probability per millisecond of congestion delay on the
    /// path — congested queues drop packets, so busy-hour loss rises with
    /// busy-hour RTT (the paper's §8 future-work signal).
    pub congestive_loss_per_ms: f64,
    /// Probability that a router silently rate-limits ICMP for a whole
    /// 10-minute window over IPv4 (drives Table 1's "missing IP-level
    /// data": bursts of probes within the window all go unanswered, so
    /// retries don't help — matching real traceroute `*` behavior).
    pub rate_limit_prob_v4: f64,
    /// Same for IPv6 (the paper sees more missing hops on v6).
    pub rate_limit_prob_v6: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            loss_prob: 0.006,
            spike_prob: 0.015,
            spike_mean_ms: 25.0,
            server_processing_ms: 0.15,
            router_processing_ms: 0.4,
            congestive_loss_per_ms: 0.0015,
            // ~11 visible hops per trace: 1-(1-q)^11 ≈ 28% / 33% of traces
            // with at least one silent hop (Table 1).
            rate_limit_prob_v4: 0.029,
            rate_limit_prob_v6: 0.036,
        }
    }
}

/// The observable outcome of one probe.
#[derive(Clone, Debug, PartialEq)]
pub enum ProbeReply {
    /// A router's TTL-exceeded answer: the hop address (ingress interface,
    /// family matching the probe) and the measured RTT.
    TimeExceeded {
        /// Source address of the ICMP time-exceeded message.
        from: IpAddr,
        /// Measured round-trip time, ms.
        rtt_ms: f64,
    },
    /// The destination's echo reply.
    EchoReply {
        /// The destination server's address.
        from: IpAddr,
        /// Measured round-trip time, ms.
        rtt_ms: f64,
    },
    /// No answer (probe lost, reply lost, or the hop router never answers).
    Lost,
    /// No path exists (routing failure / v6 not available).
    Unreachable,
}

/// The simulated measurement plane.
pub struct Network {
    oracle: Arc<RouteOracle>,
    congestion: CongestionModel,
    params: NetworkParams,
    // Wire-level counters (`netsim.*`), shared with any registry passed to
    // [`Network::observe`]. Incremented only while a global registry is
    // installed (`s2s_obs::enabled`), so an uninstrumented run pays one
    // relaxed bool load per probe.
    probes: Arc<s2s_obs::Counter>,
    probes_lost: Arc<s2s_obs::Counter>,
    probes_unreachable: Arc<s2s_obs::Counter>,
    pings: Arc<s2s_obs::Counter>,
}

impl Network {
    /// Assembles the plane from its parts.
    pub fn new(
        oracle: Arc<RouteOracle>,
        congestion: CongestionModel,
        params: NetworkParams,
    ) -> Self {
        Network {
            oracle,
            congestion,
            params,
            probes: Arc::new(s2s_obs::Counter::new()),
            probes_lost: Arc::new(s2s_obs::Counter::new()),
            probes_unreachable: Arc::new(s2s_obs::Counter::new()),
            pings: Arc::new(s2s_obs::Counter::new()),
        }
    }

    /// Registers the plane's live wire-level counters in `registry` —
    /// `netsim.probes` (TTL-limited probes sent), `netsim.probes_lost`,
    /// `netsim.probes_unreachable`, `netsim.pings` — and the routing
    /// oracle's `oracle.cache.*` counters. Counting is gated on a global
    /// registry being [installed](s2s_obs::install), so also install one
    /// (or this same one) to start the counts.
    pub fn observe(&self, registry: &s2s_obs::Registry) {
        registry.register_counter("netsim.probes", Arc::clone(&self.probes));
        registry.register_counter("netsim.probes_lost", Arc::clone(&self.probes_lost));
        registry
            .register_counter("netsim.probes_unreachable", Arc::clone(&self.probes_unreachable));
        registry.register_counter("netsim.pings", Arc::clone(&self.pings));
        self.oracle.observe(registry);
    }

    /// The routing oracle under this network.
    pub fn oracle(&self) -> &Arc<RouteOracle> {
        &self.oracle
    }

    /// The congestion ground truth (for validating localization).
    pub fn congestion(&self) -> &CongestionModel {
        &self.congestion
    }

    /// The measurement-plane parameters.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Sends one TTL-limited probe and reports what comes back.
    ///
    /// `flow` selects the ECMP path; `probe_salt` distinguishes retries of
    /// the same probe (loss is per-transmission, not per-hop).
    #[allow(clippy::too_many_arguments)] // one knob per probe-header field
    pub fn probe(
        &self,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        ttl: u8,
        flow: u64,
        probe_salt: u64,
    ) -> ProbeReply {
        let Some(fwd) = self.oracle.router_path(src, dst, proto, t, flow) else {
            if s2s_obs::enabled() {
                self.probes.inc();
                self.probes_unreachable.inc();
            }
            return ProbeReply::Unreachable;
        };
        self.probe_on(&fwd, src, dst, proto, t, ttl, flow, probe_salt)
    }

    /// The forward router path a probe with this header would take —
    /// constant within a routing epoch and per flow, so callers sending
    /// many probes over one flow (Paris traceroute) can resolve it once
    /// and reuse it via [`probe_on`](Self::probe_on).
    pub fn forward_path(
        &self,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        flow: u64,
    ) -> Option<RouterPath> {
        self.oracle.router_path(src, dst, proto, t, flow)
    }

    /// [`probe`](Self::probe) with the forward path already resolved.
    /// `fwd` must be the path `forward_path` returns for the same header;
    /// replies are then byte-identical to the unbatched `probe`.
    #[allow(clippy::too_many_arguments)] // one knob per probe-header field
    pub fn probe_on(
        &self,
        fwd: &RouterPath,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        ttl: u8,
        flow: u64,
        probe_salt: u64,
    ) -> ProbeReply {
        let reply = self.probe_on_uncounted(fwd, src, dst, proto, t, ttl, flow, probe_salt);
        if s2s_obs::enabled() {
            self.probes.inc();
            match reply {
                ProbeReply::Lost => self.probes_lost.inc(),
                ProbeReply::Unreachable => self.probes_unreachable.inc(),
                _ => {}
            }
        }
        reply
    }

    /// The reply computation itself — pure in the probe header and the
    /// world state, so counting wraps it without touching it.
    #[allow(clippy::too_many_arguments)]
    fn probe_on_uncounted(
        &self,
        fwd: &RouterPath,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        ttl: u8,
        flow: u64,
        probe_salt: u64,
    ) -> ProbeReply {
        let topo = self.oracle.topology();
        let k = noise::key(&[
            src.0 as u64,
            dst.0 as u64,
            proto as u64,
            u64::from(t.minutes()),
            u64::from(ttl),
            flow,
            probe_salt,
        ]);
        if noise::uniform(noise::mix(k ^ 0x105e)) < self.params.loss_prob {
            return ProbeReply::Lost;
        }

        // Visible hops consume TTL; hidden (MPLS interior) hops do not.
        let visible: Vec<usize> = fwd
            .hops
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.hidden)
            .map(|(i, _)| i)
            .collect();

        if (ttl as usize) <= visible.len() {
            let hop_idx = visible[ttl as usize - 1];
            let hop = &fwd.hops[hop_idx];
            let router = &topo.routers[hop.router.index()];
            let responsive = match proto {
                Protocol::V4 => router.responsive_v4,
                Protocol::V6 => router.responsive_v6,
            };
            if !responsive {
                return ProbeReply::Lost;
            }
            // ICMP rate limiting: the router goes silent for whole
            // 10-minute windows, so all retries of one traceroute see the
            // same silence (the classic `* * *` hop).
            let rl_prob = match proto {
                Protocol::V4 => self.params.rate_limit_prob_v4,
                Protocol::V6 => self.params.rate_limit_prob_v6,
            };
            let rl_key = noise::key(&[
                0x7a7e,
                hop.router.0 as u64,
                proto as u64,
                u64::from(t.minutes() / 10),
            ]);
            if noise::uniform(rl_key) < rl_prob {
                return ProbeReply::Lost;
            }
            // RTT to the hop: out and back over the forward prefix.
            let (prefix_delay, prefix_cong) = self.prefix_cost(fwd, hop_idx + 1, proto, t);
            // Congested queues drop probes as well as delaying them.
            if noise::uniform(noise::mix(k ^ 0xC105))
                < prefix_cong * self.params.congestive_loss_per_ms
            {
                return ProbeReply::Lost;
            }
            let rtt = 2.0 * (prefix_delay + prefix_cong)
                + self.params.router_processing_ms
                + noise::probe_noise_ms(k, self.params.spike_prob, self.params.spike_mean_ms);
            let iface = topo.links[hop.ingress_link.index()].iface_of(hop.router);
            let addr = match proto {
                Protocol::V4 => IpAddr::V4(topo.ifaces[iface.index()].v4),
                Protocol::V6 => IpAddr::V6(topo.ifaces[iface.index()].v6),
            };
            ProbeReply::TimeExceeded { from: addr, rtt_ms: rtt }
        } else {
            // The probe reaches the destination server.
            match self.e2e_rtt_inner(fwd, src, dst, proto, t, flow, k) {
                Some(rtt) => {
                    let c = &topo.clusters[dst.index()];
                    let addr = match proto {
                        Protocol::V4 => IpAddr::V4(c.v4),
                        Protocol::V6 => IpAddr::V6(c.v6),
                    };
                    ProbeReply::EchoReply { from: addr, rtt_ms: rtt }
                }
                None => ProbeReply::Unreachable,
            }
        }
    }

    /// One end-to-end echo (ping). `None` when lost or unreachable.
    pub fn ping(
        &self,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        seq: u64,
    ) -> Option<f64> {
        let flow = noise::key(&[src.0 as u64, dst.0 as u64, proto as u64, 0x9109]);
        let rtt = match self.probe(src, dst, proto, t, u8::MAX, flow, seq) {
            ProbeReply::EchoReply { rtt_ms, .. } => Some(rtt_ms),
            _ => None,
        };
        if s2s_obs::enabled() {
            self.pings.inc();
            if let (Some(r), Some(reg)) = (rtt, s2s_obs::installed()) {
                reg.histogram("netsim.ping_rtt_ms", s2s_obs::DEFAULT_LATENCY_BOUNDS_MS)
                    .observe(r);
            }
        }
        rtt
    }

    /// The noise-free end-to-end RTT (propagation + congestion, both
    /// directions) — ground truth for tests and calibration.
    pub fn ideal_rtt(
        &self,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
    ) -> Option<f64> {
        let flow = noise::key(&[src.0 as u64, dst.0 as u64, proto as u64, 0x9109]);
        let fwd = self.oracle.router_path(src, dst, proto, t, flow)?;
        let rev_flow = noise::mix(flow ^ 0x0e0e);
        let rev = self.oracle.router_path(dst, src, proto, t, rev_flow)?;
        let (fd, fc) = self.prefix_cost(&fwd, fwd.hops.len(), proto, t);
        let (rd, rc) = self.prefix_cost(&rev, rev.hops.len(), proto, t);
        Some(fd + fc + rd + rc + self.params.server_processing_ms)
    }

    /// Propagation delay and congestion overhead of the first `n_hops` hops
    /// of a path, one-way.
    fn prefix_cost(
        &self,
        path: &RouterPath,
        n_hops: usize,
        proto: Protocol,
        t: SimTime,
    ) -> (f64, f64) {
        let topo = self.oracle.topology();
        let mut delay = 0.0;
        let mut cong = 0.0;
        for hop in &path.hops[..n_hops] {
            delay += topo.links[hop.ingress_link.index()].delay_ms + 0.05;
            cong +=
                self.congestion.delay_ms_toward(hop.ingress_link, hop.router, proto, t);
        }
        (delay, cong)
    }

    #[allow(clippy::too_many_arguments)] // mirrors probe()'s header fields
    fn e2e_rtt_inner(
        &self,
        fwd: &RouterPath,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        flow: u64,
        k: u64,
    ) -> Option<f64> {
        let rev_flow = noise::mix(flow ^ 0x0e0e);
        let rev = self.oracle.router_path(dst, src, proto, t, rev_flow)?;
        let (fd, fc) = self.prefix_cost(fwd, fwd.hops.len(), proto, t);
        let (rd, rc) = self.prefix_cost(&rev, rev.hops.len(), proto, t);
        if noise::uniform(noise::mix(k ^ 0xC105))
            < (fc + rc) * self.params.congestive_loss_per_ms
        {
            return None;
        }
        Some(
            fd + fc
                + rd
                + rc
                + self.params.server_processing_ms
                + noise::probe_noise_ms(
                    k,
                    self.params.spike_prob,
                    self.params.spike_mean_ms,
                ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::{CongestionParams, LinkProfile};
    use s2s_routing::{Dynamics, DynamicsParams};
    use s2s_topology::{build_topology, TopologyParams};
    use s2s_types::SimDuration;

    fn quiet_network(seed: u64) -> Network {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(40))),
        ));
        Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        )
    }

    #[test]
    fn ping_round_trips() {
        let net = quiet_network(101);
        let rtt = net
            .ping(ClusterId::new(0), ClusterId::new(3), Protocol::V4, SimTime::T0, 1)
            .expect("reachable");
        assert!(rtt > 0.0 && rtt < 800.0, "rtt = {rtt}");
    }

    #[test]
    fn probe_counters_gate_on_the_global_registry() {
        let net = quiet_network(101);
        let reg = Arc::new(s2s_obs::Registry::new());
        net.observe(&reg);
        // No registry installed: probing counts nothing.
        net.ping(ClusterId::new(0), ClusterId::new(3), Protocol::V4, SimTime::T0, 1);
        assert_eq!(reg.counter("netsim.pings").get(), 0);
        assert_eq!(reg.counter("netsim.probes").get(), 0);
        // Installed: pings and probes count, and the reply is unchanged.
        let before =
            net.ping(ClusterId::new(0), ClusterId::new(3), Protocol::V4, SimTime::T0, 2);
        s2s_obs::install(Arc::clone(&reg));
        let counted =
            net.ping(ClusterId::new(0), ClusterId::new(3), Protocol::V4, SimTime::T0, 2);
        s2s_obs::uninstall();
        assert_eq!(before, counted, "counting must not perturb replies");
        assert_eq!(reg.counter("netsim.pings").get(), 1);
        assert!(reg.counter("netsim.probes").get() >= 1);
        // The oracle's counters rode along via Network::observe.
        assert!(reg.counter("oracle.cache.hits").get() + reg.counter("oracle.cache.misses").get() > 0);
        let snap = reg.snapshot();
        let hist = snap.histograms.get("netsim.ping_rtt_ms");
        assert!(
            hist.map(|h| h.count >= 1).unwrap_or(false),
            "successful installed ping must land in the RTT histogram"
        );
    }

    #[test]
    fn rtt_scales_with_distance() {
        let net = quiet_network(101);
        let topo = net.oracle().topology().clone();
        // Find a near pair and a far pair by cRTT.
        let mut best: Option<(usize, usize, f64)> = None;
        let mut worst: Option<(usize, usize, f64)> = None;
        for a in 0..topo.clusters.len() {
            for b in 0..topo.clusters.len() {
                if a == b {
                    continue;
                }
                let c = s2s_geo::c_rtt_ms(
                    &topo.cluster_city(ClusterId::from(a)).point(),
                    &topo.cluster_city(ClusterId::from(b)).point(),
                );
                if best.map(|(_, _, d)| c < d).unwrap_or(true) {
                    best = Some((a, b, c));
                }
                if worst.map(|(_, _, d)| c > d).unwrap_or(true) {
                    worst = Some((a, b, c));
                }
            }
        }
        let (na, nb, _) = best.unwrap();
        let (fa, fb, _) = worst.unwrap();
        let near = net
            .ideal_rtt(ClusterId::from(na), ClusterId::from(nb), Protocol::V4, SimTime::T0)
            .unwrap();
        let far = net
            .ideal_rtt(ClusterId::from(fa), ClusterId::from(fb), Protocol::V4, SimTime::T0)
            .unwrap();
        assert!(far > near, "far {far} <= near {near}");
    }

    #[test]
    fn rtt_exceeds_crtt() {
        // Physical sanity: measured RTT can't beat light in vacuum.
        let net = quiet_network(103);
        let topo = net.oracle().topology().clone();
        for a in 0..topo.clusters.len().min(6) {
            for b in 0..topo.clusters.len().min(6) {
                if a == b {
                    continue;
                }
                let crtt = s2s_geo::c_rtt_ms(
                    &topo.cluster_city(ClusterId::from(a)).point(),
                    &topo.cluster_city(ClusterId::from(b)).point(),
                );
                if let Some(rtt) = net.ideal_rtt(
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    SimTime::T0,
                ) {
                    assert!(
                        rtt >= crtt * 0.99,
                        "pair {a}->{b}: rtt {rtt} < cRTT {crtt}"
                    );
                }
            }
        }
    }

    #[test]
    fn traceroute_probe_walks_hops() {
        let net = quiet_network(104);
        let (src, dst) = (ClusterId::new(1), ClusterId::new(7));
        let flow = 42;
        let mut last_rtt = 0.0;
        let mut reached = false;
        for ttl in 1..=40u8 {
            match net.probe(src, dst, Protocol::V4, SimTime::T0, ttl, flow, 0) {
                ProbeReply::TimeExceeded { rtt_ms, .. } => {
                    // RTT grows along the path (no congestion/noise here).
                    assert!(
                        rtt_ms + 1.5 >= last_rtt,
                        "ttl {ttl}: rtt went backwards {last_rtt} -> {rtt_ms}"
                    );
                    last_rtt = rtt_ms;
                }
                ProbeReply::EchoReply { from, rtt_ms } => {
                    let topo = net.oracle().topology();
                    assert_eq!(from, IpAddr::V4(topo.clusters[dst.index()].v4));
                    assert!(rtt_ms > 0.0);
                    reached = true;
                    break;
                }
                ProbeReply::Lost => continue,
                ProbeReply::Unreachable => panic!("unreachable in quiet network"),
            }
        }
        assert!(reached, "never reached destination");
    }

    #[test]
    fn echo_after_destination_for_all_higher_ttls() {
        let net = quiet_network(104);
        let r1 = net.probe(
            ClusterId::new(0),
            ClusterId::new(2),
            Protocol::V4,
            SimTime::T0,
            64,
            1,
            0,
        );
        let r2 = net.probe(
            ClusterId::new(0),
            ClusterId::new(2),
            Protocol::V4,
            SimTime::T0,
            255,
            1,
            0,
        );
        assert!(matches!(r1, ProbeReply::EchoReply { .. }));
        assert!(matches!(r2, ProbeReply::EchoReply { .. }));
    }

    #[test]
    fn unresponsive_routers_yield_lost() {
        let topo = Arc::new(build_topology(&TopologyParams {
            unresponsive_router_prob: 0.5,
            ..TopologyParams::tiny(7)
        }));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(5))),
        ));
        let net = Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        );
        let mut lost = 0;
        let mut answered = 0;
        for a in 0..topo.clusters.len().min(8) {
            for b in 0..topo.clusters.len().min(8) {
                if a == b {
                    continue;
                }
                for ttl in 1..=25u8 {
                    match net.probe(
                        ClusterId::from(a),
                        ClusterId::from(b),
                        Protocol::V4,
                        SimTime::T0,
                        ttl,
                        1,
                        0,
                    ) {
                        ProbeReply::Lost => lost += 1,
                        ProbeReply::TimeExceeded { .. } => answered += 1,
                        _ => break,
                    }
                }
            }
        }
        assert!(lost > 0, "no unresponsive hops seen");
        assert!(answered > 0);
        // Retries of an unresponsive hop stay lost (it's the router, not
        // transient loss).
        'find: for ttl in 1..=25u8 {
            for salt in 0..3u64 {
                let r = net.probe(
                    ClusterId::new(0),
                    ClusterId::new(1),
                    Protocol::V4,
                    SimTime::T0,
                    ttl,
                    1,
                    salt,
                );
                if !matches!(r, ProbeReply::Lost) {
                    continue 'find;
                }
            }
            return; // found a hop lost under every retry: pass
        }
    }

    #[test]
    fn congestion_raises_rtt_at_busy_hour() {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(31)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(40))),
        ));
        // Congest the first link of cluster 0's forward path.
        let fwd = oracle
            .router_path(ClusterId::new(0), ClusterId::new(5), Protocol::V4, SimTime::T0, 1)
            .unwrap();
        let target = fwd.hops[1].ingress_link;
        let profile = LinkProfile {
            amplitude_ms: 30.0,
            peak_local_hour: 20.0,
            width_hours: 3.0,
            start_min: 0,
            end_min: SimTime::from_days(40).minutes(),
            lon_deg: 0.0,
            // Congest the forward direction (toward the hop router).
            toward: fwd.hops[1].router.0,
            v6_factor: 1.0,
        };
        let net = Network::new(
            Arc::clone(&oracle),
            CongestionModel::from_profiles(vec![(target, profile)]),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        );
        let quiet = net
            .ideal_rtt(
                ClusterId::new(0),
                ClusterId::new(5),
                Protocol::V4,
                SimTime::from_days(10) + SimDuration::from_hours(5),
            )
            .unwrap();
        let busy = net
            .ideal_rtt(
                ClusterId::new(0),
                ClusterId::new(5),
                Protocol::V4,
                SimTime::from_days(10) + SimDuration::from_hours(20),
            )
            .unwrap();
        assert!(
            busy > quiet + 15.0,
            "busy {busy} not clearly above quiet {quiet}"
        );
    }

    #[test]
    fn loss_probability_is_respected() {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(11)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(5))),
        ));
        let net = Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.2, spike_prob: 0.0, ..NetworkParams::default() },
        );
        let n = 2000;
        let lost = (0..n)
            .filter(|&i| {
                net.ping(ClusterId::new(0), ClusterId::new(4), Protocol::V4, SimTime::T0, i)
                    .is_none()
            })
            .count();
        let frac = lost as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.05, "loss fraction = {frac}");
    }

    #[test]
    fn probe_on_resolved_path_matches_probe() {
        // Full default noise stack: the precomputed-path entry point must
        // reproduce `probe` byte-for-byte for every TTL and retry.
        let topo = Arc::new(build_topology(&TopologyParams::tiny(19)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::generate(&topo, &DynamicsParams::default())),
        ));
        let model = CongestionModel::generate(&topo, &CongestionParams::default());
        let net = Network::new(oracle, model, NetworkParams::default());
        let (src, dst) = (ClusterId::new(1), ClusterId::new(6));
        for day in [0u32, 3, 9] {
            let t = SimTime::from_days(day);
            for proto in [Protocol::V4, Protocol::V6] {
                let flow = 77;
                let fwd = net.forward_path(src, dst, proto, t, flow);
                for ttl in 1..=20u8 {
                    for salt in 0..2u64 {
                        let plain = net.probe(src, dst, proto, t, ttl, flow, salt);
                        let on = match &fwd {
                            Some(p) => net.probe_on(p, src, dst, proto, t, ttl, flow, salt),
                            None => ProbeReply::Unreachable,
                        };
                        assert_eq!(plain, on, "day {day} {proto:?} ttl {ttl} salt {salt}");
                    }
                }
            }
        }
    }

    #[test]
    fn probes_are_deterministic() {
        let net = quiet_network(101);
        let a = net.probe(
            ClusterId::new(2),
            ClusterId::new(6),
            Protocol::V4,
            SimTime::from_hours(7),
            3,
            5,
            1,
        );
        let b = net.probe(
            ClusterId::new(2),
            ClusterId::new(6),
            Protocol::V4,
            SimTime::from_hours(7),
            3,
            5,
            1,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn v6_probe_uses_v6_addresses() {
        let net = quiet_network(101);
        match net.probe(
            ClusterId::new(0),
            ClusterId::new(3),
            Protocol::V6,
            SimTime::T0,
            1,
            1,
            0,
        ) {
            ProbeReply::TimeExceeded { from, .. } => assert!(from.is_ipv6()),
            ProbeReply::EchoReply { from, .. } => assert!(from.is_ipv6()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn congestion_generate_integrates() {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(61)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::generate(&topo, &DynamicsParams::default())),
        ));
        let model = CongestionModel::generate(&topo, &CongestionParams::default());
        let net = Network::new(oracle, model, NetworkParams::default());
        // Smoke: pings still work with the full stack.
        let mut ok = 0;
        for b in 1..topo.clusters.len().min(10) {
            if net
                .ping(ClusterId::new(0), ClusterId::from(b), Protocol::V4, SimTime::T0, 1)
                .is_some()
            {
                ok += 1;
            }
        }
        assert!(ok >= 5);
    }
}
