//! Wire-level simulation.
//!
//! Sits on top of the routing oracle and turns paths into *measurements*:
//!
//! * [`congestion`] — the diurnal queueing model: a seeded subset of links
//!   (internal and interconnect) gains a busy-hour delay bump in the link's
//!   local time, with amplitudes matching the paper's Fig. 9 (20–30 ms
//!   typical, ~60 ms on transcontinental links, higher on some Asia paths),
//! * [`noise`] — deterministic, hash-keyed measurement noise: sub-ms jitter
//!   on every probe plus occasional heavy spikes (the 90th-percentile
//!   texture of Fig. 1),
//! * [`packet`] — `bytes`-backed ICMP echo / time-exceeded codecs used at
//!   the probe boundary,
//! * [`sim`] — the [`Network`] façade: TTL-limited probes and
//!   end-to-end pings with asymmetric forward/reverse delay composition,
//!   probe loss, unresponsive routers, and MPLS hop hiding.

pub mod bandwidth;
pub mod congestion;
pub mod noise;
pub mod packet;
pub mod sim;

pub use bandwidth::PacketPairSample;
pub use congestion::{CongestionModel, CongestionParams, LinkProfile};
pub use sim::{Network, NetworkParams, ProbeReply};
