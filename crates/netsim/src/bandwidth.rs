//! Packet-pair bandwidth probing — the substrate for the paper's §8
//! "available bandwidth" future-work item.
//!
//! Two back-to-back packets leave the narrowest link with a dispersion of
//! `packet_size / capacity`; cross traffic stretches the gap further, so
//! the dispersion-derived rate approximates the *available* bandwidth of
//! the tight link, not its raw capacity (the classic packet-pair model,
//! simplified: no multi-hop re-compression).
//!
//! Link utilization follows the congestion model: an uncongested core link
//! idles around a diurnal base load, while a congested link's busy hour
//! pushes utilization toward saturation — exactly when its RTT bump peaks.

use crate::noise;
use crate::sim::Network;
use s2s_types::{ClusterId, Protocol, SimTime};

/// Result of one packet-pair measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketPairSample {
    /// Measured dispersion of the pair at the receiver, ms.
    pub dispersion_ms: f64,
    /// The rate implied by the dispersion, Mbit/s — the available-bandwidth
    /// estimate of the path's tight link.
    pub estimated_mbps: f64,
}

/// The diurnal base load every link carries even without a congestion
/// profile (traffic follows the sun; 35% ± 15%).
fn base_utilization(t: SimTime, lon_deg: f64) -> f64 {
    let h = t.local_hour_of_day(lon_deg);
    let mut d = (h - 20.0f64).abs();
    if d > 12.0 {
        d = 24.0 - d;
    }
    0.35 + 0.15 * (-0.5 * (d / 4.0f64).powi(2)).exp()
}

impl Network {
    /// Sends one packet pair of `size_bytes` packets and reports the
    /// received dispersion and the implied available-bandwidth estimate.
    /// `None` when no path exists or the probe is lost.
    pub fn packet_pair(
        &self,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        size_bytes: u32,
        seq: u64,
    ) -> Option<PacketPairSample> {
        let flow = noise::key(&[src.0 as u64, dst.0 as u64, proto as u64, 0xBA2D]);
        let fwd = self.oracle().router_path(src, dst, proto, t, flow)?;
        let k = noise::key(&[
            0xBA2D,
            src.0 as u64,
            dst.0 as u64,
            proto as u64,
            u64::from(t.minutes()),
            seq,
        ]);
        if noise::uniform(noise::mix(k ^ 0x105e)) < self.params().loss_prob * 2.0 {
            return None; // either packet lost kills the pair
        }
        let topo = self.oracle().topology();
        let bits = f64::from(size_bytes) * 8.0;
        let mut worst_dispersion_ms: f64 = 0.0;
        for hop in &fwd.hops {
            let link = &topo.links[hop.ingress_link.index()];
            let mid_lon = (topo.router_city(link.a).lon + topo.router_city(link.b).lon)
                / 2.0;
            let mut util = base_utilization(t, mid_lon);
            // A congested link's queueing bump maps onto extra utilization:
            // scale the profile's instantaneous delay against its amplitude.
            if let Some(profile) = self.congestion().profile(hop.ingress_link) {
                let bump = profile.delay_ms(t) / profile.amplitude_ms.max(1.0);
                util = (util + 0.55 * bump).min(0.97);
            }
            let available = link.capacity_mbps * (1.0 - util);
            // Dispersion out of this link in ms: bits / (Mbit/s * 1000).
            let disp = bits / (available.max(1.0) * 1000.0);
            worst_dispersion_ms = worst_dispersion_ms.max(disp);
        }
        // Receiver timestamping jitter.
        let jitter = 0.002 * noise::normal(noise::mix(k ^ 0x7e11)).abs();
        let dispersion_ms = worst_dispersion_ms + jitter;
        Some(PacketPairSample {
            dispersion_ms,
            estimated_mbps: bits / (dispersion_ms * 1000.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::{CongestionModel, LinkProfile};
    use crate::sim::NetworkParams;
    use s2s_routing::{Dynamics, RouteOracle};
    use s2s_topology::{build_topology, TopologyParams};
    use s2s_types::SimDuration;
    use std::sync::Arc;

    fn quiet(seed: u64) -> Network {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(40))),
        ));
        Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        )
    }

    #[test]
    fn estimate_is_below_tightest_capacity() {
        let net = quiet(5);
        let topo = net.oracle().topology().clone();
        let (src, dst) = (ClusterId::new(0), ClusterId::new(4));
        let t = SimTime::from_days(1);
        let s = net.packet_pair(src, dst, Protocol::V4, t, 1500, 0).unwrap();
        let path = net
            .oracle()
            .router_path(src, dst, Protocol::V4, t, 0xBA2D ^ 1)
            .unwrap();
        let min_cap = path
            .hops
            .iter()
            .map(|h| topo.links[h.ingress_link.index()].capacity_mbps)
            .fold(f64::INFINITY, f64::min);
        assert!(s.estimated_mbps > 100.0, "estimate {}", s.estimated_mbps);
        assert!(
            s.estimated_mbps <= min_cap,
            "estimate {} exceeds tightest capacity {min_cap}",
            s.estimated_mbps
        );
    }

    #[test]
    fn busy_hour_shrinks_available_bandwidth() {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(9)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(40))),
        ));
        let (src, dst) = (ClusterId::new(0), ClusterId::new(5));
        let path = oracle
            .router_path(src, dst, Protocol::V4, SimTime::T0, 1)
            .unwrap();
        let victim = &path.hops[2.min(path.hops.len() - 1)];
        let profile = LinkProfile {
            amplitude_ms: 30.0,
            peak_local_hour: 20.0,
            width_hours: 3.0,
            start_min: 0,
            end_min: SimTime::from_days(40).minutes(),
            lon_deg: 0.0,
            toward: victim.router.0,
            v6_factor: 1.0,
        };
        let net = Network::new(
            Arc::clone(&oracle),
            CongestionModel::from_profiles(vec![(victim.ingress_link, profile)]),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        );
        let quiet_t = SimTime::from_days(10) + SimDuration::from_hours(5);
        let busy_t = SimTime::from_days(10) + SimDuration::from_hours(20);
        let q = net.packet_pair(src, dst, Protocol::V4, quiet_t, 1500, 0).unwrap();
        let b = net.packet_pair(src, dst, Protocol::V4, busy_t, 1500, 0).unwrap();
        assert!(
            b.estimated_mbps < q.estimated_mbps * 0.8,
            "busy {} not clearly below quiet {}",
            b.estimated_mbps,
            q.estimated_mbps
        );
    }

    #[test]
    fn bigger_packets_disperse_longer() {
        let net = quiet(5);
        let t = SimTime::from_days(2);
        let small = net
            .packet_pair(ClusterId::new(0), ClusterId::new(3), Protocol::V4, t, 200, 0)
            .unwrap();
        let large = net
            .packet_pair(ClusterId::new(0), ClusterId::new(3), Protocol::V4, t, 1500, 0)
            .unwrap();
        assert!(large.dispersion_ms > small.dispersion_ms);
    }

    #[test]
    fn deterministic() {
        let net = quiet(5);
        let t = SimTime::from_days(2);
        let a = net.packet_pair(ClusterId::new(1), ClusterId::new(6), Protocol::V4, t, 1500, 3);
        let b = net.packet_pair(ClusterId::new(1), ClusterId::new(6), Protocol::V4, t, 1500, 3);
        assert_eq!(a, b);
    }
}
