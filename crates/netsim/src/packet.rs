//! ICMP packet codecs.
//!
//! The probe tools exchange real byte-level ICMP messages with the network
//! façade, so the measurement boundary looks like the one the paper's tools
//! (ping, traceroute) sit on. Only the three message types the tools need
//! are implemented: echo request, echo reply, and time exceeded. The wire
//! format follows ICMPv4 (RFC 792) for both families — close enough for a
//! simulator whose consumers never parse ICMPv6-specific fields.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// ICMP type byte for echo reply.
pub const TYPE_ECHO_REPLY: u8 = 0;
/// ICMP type byte for echo request.
pub const TYPE_ECHO_REQUEST: u8 = 8;
/// ICMP type byte for time exceeded.
pub const TYPE_TIME_EXCEEDED: u8 = 11;

/// A decoded ICMP message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request with identifier, sequence number, and payload.
    EchoRequest {
        /// Identifier (the probing process).
        ident: u16,
        /// Sequence number (the probe index).
        seq: u16,
        /// Opaque payload (timestamps, flow cookies).
        payload: Bytes,
    },
    /// Echo reply mirroring the request.
    EchoReply {
        /// Identifier echoed back.
        ident: u16,
        /// Sequence echoed back.
        seq: u16,
        /// Payload echoed back.
        payload: Bytes,
    },
    /// TTL expired in transit; carries the leading bytes of the original
    /// datagram (here: the original ICMP header).
    TimeExceeded {
        /// Leading bytes of the expired packet.
        original: Bytes,
    },
}

/// Errors from [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than 8 header bytes.
    Truncated,
    /// Checksum mismatch.
    BadChecksum,
    /// Unknown (unsupported) type byte.
    UnknownType(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "ICMP message truncated"),
            DecodeError::BadChecksum => write!(f, "ICMP checksum mismatch"),
            DecodeError::UnknownType(t) => write!(f, "unsupported ICMP type {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The Internet checksum (RFC 1071) over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encodes a message to wire bytes (checksum filled in).
pub fn encode(msg: &IcmpMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(16);
    match msg {
        IcmpMessage::EchoRequest { ident, seq, payload }
        | IcmpMessage::EchoReply { ident, seq, payload } => {
            let ty = if matches!(msg, IcmpMessage::EchoRequest { .. }) {
                TYPE_ECHO_REQUEST
            } else {
                TYPE_ECHO_REPLY
            };
            buf.put_u8(ty);
            buf.put_u8(0); // code
            buf.put_u16(0); // checksum placeholder
            buf.put_u16(*ident);
            buf.put_u16(*seq);
            buf.put_slice(payload);
        }
        IcmpMessage::TimeExceeded { original } => {
            buf.put_u8(TYPE_TIME_EXCEEDED);
            buf.put_u8(0); // code 0: TTL exceeded in transit
            buf.put_u16(0);
            buf.put_u32(0); // unused
            buf.put_slice(original);
        }
    }
    let ck = internet_checksum(&buf);
    buf[2..4].copy_from_slice(&ck.to_be_bytes());
    buf.freeze()
}

/// Decodes wire bytes into a message, verifying the checksum.
pub fn decode(mut data: Bytes) -> Result<IcmpMessage, DecodeError> {
    if data.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    if internet_checksum(&data) != 0 {
        return Err(DecodeError::BadChecksum);
    }
    let ty = data.get_u8();
    let _code = data.get_u8();
    let _cksum = data.get_u16();
    match ty {
        TYPE_ECHO_REQUEST | TYPE_ECHO_REPLY => {
            let ident = data.get_u16();
            let seq = data.get_u16();
            let payload = data;
            if ty == TYPE_ECHO_REQUEST {
                Ok(IcmpMessage::EchoRequest { ident, seq, payload })
            } else {
                Ok(IcmpMessage::EchoReply { ident, seq, payload })
            }
        }
        TYPE_TIME_EXCEEDED => {
            let _unused = data.get_u32();
            Ok(IcmpMessage::TimeExceeded { original: data })
        }
        other => Err(DecodeError::UnknownType(other)),
    }
}

/// Builds the echo reply for a request (what the destination host does).
pub fn reply_to(request: &IcmpMessage) -> Option<IcmpMessage> {
    match request {
        IcmpMessage::EchoRequest { ident, seq, payload } => Some(IcmpMessage::EchoReply {
            ident: *ident,
            seq: *seq,
            payload: payload.clone(),
        }),
        _ => None,
    }
}

/// Builds the time-exceeded message a router emits for an expired request
/// (quoting the original header, RFC 792 style).
pub fn time_exceeded_for(request_wire: &Bytes) -> IcmpMessage {
    let quote_len = request_wire.len().min(8 + 8); // header + 8 bytes
    IcmpMessage::TimeExceeded { original: request_wire.slice(..quote_len) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn echo_round_trip() {
        let msg = IcmpMessage::EchoRequest {
            ident: 0xBEEF,
            seq: 42,
            payload: Bytes::from_static(b"timestamp"),
        };
        let wire = encode(&msg);
        assert_eq!(decode(wire).unwrap(), msg);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpMessage::EchoRequest {
            ident: 7,
            seq: 9,
            payload: Bytes::from_static(b"xyz"),
        };
        let rep = reply_to(&req).unwrap();
        match rep {
            IcmpMessage::EchoReply { ident, seq, ref payload } => {
                assert_eq!((ident, seq), (7, 9));
                assert_eq!(&payload[..], b"xyz");
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert!(reply_to(&rep).is_none(), "replies don't get replies");
    }

    #[test]
    fn time_exceeded_quotes_request() {
        let req = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 2,
            payload: Bytes::from(vec![0xAA; 64]),
        };
        let wire = encode(&req);
        let te = time_exceeded_for(&wire);
        let te_wire = encode(&te);
        match decode(te_wire).unwrap() {
            IcmpMessage::TimeExceeded { original } => {
                assert_eq!(original.len(), 16, "header + 8 quoted bytes");
                assert_eq!(original[0], TYPE_ECHO_REQUEST);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let wire = encode(&IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::new(),
        });
        let mut bad = BytesMut::from(&wire[..]);
        bad[6] ^= 0xFF;
        assert_eq!(decode(bad.freeze()), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(decode(Bytes::from_static(b"\x08\x00")), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(3); // destination unreachable — unsupported here
        buf.put_u8(0);
        buf.put_u16(0);
        buf.put_u32(0);
        let ck = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(decode(buf.freeze()), Err(DecodeError::UnknownType(3)));
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
        // before folding; complement is 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_checksum() {
        let data = [0x01, 0x02, 0x03];
        // Pads with zero: words 0102, 0300.
        let sum = 0x0102u32 + 0x0300;
        assert_eq!(internet_checksum(&data), !(sum as u16));
    }

    proptest! {
        #[test]
        fn prop_round_trip_any_echo(
            ident: u16, seq: u16,
            payload in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let msg = IcmpMessage::EchoRequest {
                ident, seq, payload: Bytes::from(payload),
            };
            prop_assert_eq!(decode(encode(&msg)).unwrap(), msg);
        }

        #[test]
        fn prop_encoded_always_validates(
            ident: u16, seq: u16,
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let wire = encode(&IcmpMessage::EchoReply {
                ident, seq, payload: Bytes::from(payload),
            });
            prop_assert_eq!(internet_checksum(&wire), 0);
        }

        #[test]
        fn prop_single_bit_flip_detected(
            seq: u16,
            byte_idx in 0usize..8,
            bit in 0u8..8,
        ) {
            let wire = encode(&IcmpMessage::EchoRequest {
                ident: 99, seq, payload: Bytes::new(),
            });
            let mut bad = BytesMut::from(&wire[..]);
            bad[byte_idx] ^= 1 << bit;
            let out = decode(bad.freeze());
            // A flip either corrupts the checksum or mutates the message.
            match out {
                Err(_) => {}
                Ok(m) => prop_assert_ne!(
                    m,
                    IcmpMessage::EchoRequest { ident: 99, seq, payload: Bytes::new() }
                ),
            }
        }
    }
}
